//! Per-block column encodings with zone-map statistics — the compressed
//! relation plane.
//!
//! A [`CompressedColumn`] stores a column's value buffer as a sequence of
//! independently encoded blocks on the canonical [`GRAM_BLOCK_ROWS`]-row
//! grid (the same grid the numerics crate's blocked reductions and the
//! shard splitter use, so decoded windows line up with every downstream
//! consumer). Encodings are chosen per block by byte cost:
//!
//! - **floats** — constant blocks, delta/bitpack when every value is
//!   exactly integer-representable (payroll-style rounded figures), raw
//!   `to_bits` otherwise;
//! - **ints** — constant, delta/bitpack, or raw;
//! - **dictionary codes** — run-length runs or bit-packed codes, with the
//!   string pool itself byte-compressed ([`SealedDict`], see
//!   [`crate::lz`]) and materialized lazily.
//!
//! Every encoding is **lossless on `f64::to_bits`** over the full slot
//! buffer (null slots included), so decoding reproduces the raw column
//! bit-for-bit and anything computed from decoded buffers — OLS
//! statistics, predicate masks, rankings — is identical to the
//! uncompressed path by construction.
//!
//! Each block also carries a zone map (min/max over valid slots, null and
//! finite counts) so predicate masks can classify whole blocks as
//! all-match / no-match and skip decoding; see
//! [`CompressedColumn::cmp_mask`]. Skip/scan counters feed the benchmark's
//! `zone_map_block_skip_frac`.

use crate::column::StrDict;
use crate::error::{RelationError, Result};
use crate::lz;
use crate::predicate::CmpOp;
use crate::value::DataType;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// Rows per encoded block. Mirrors `charles_numerics::ols::GRAM_BLOCK_ROWS`
/// (the relation crate is dependency-free by design; `charles-core`
/// compile-time-asserts the two constants agree) so decoded block windows
/// land exactly on the statistics kernels' fold grid.
pub const GRAM_BLOCK_ROWS: usize = 128;

/// Number of bits needed to store `max` (0 for 0).
fn bit_width(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Pack `values` at `width` bits each (LSB-first within and across words).
/// `width` must be in `1..=63`.
fn pack_bits(values: &[u64], width: u32) -> Vec<u64> {
    let width = width as usize;
    let total_bits = values.len() * width;
    let mut out = vec![0u64; total_bits.div_ceil(64)];
    for (i, &v) in values.iter().enumerate() {
        let bit = i * width;
        let word = bit / 64;
        let off = bit % 64;
        out[word] |= v << off;
        if off + width > 64 {
            out[word + 1] |= v >> (64 - off);
        }
    }
    out
}

/// Read value `i` back out of a [`pack_bits`] buffer.
fn unpack_bits(packed: &[u64], width: u32, i: usize) -> u64 {
    let width = width as usize;
    let bit = i * width;
    let word = bit / 64;
    let off = bit % 64;
    let mut v = packed[word] >> off;
    if off + width > 64 {
        v |= packed[word + 1] << (64 - off);
    }
    v & ((1u64 << width) - 1)
}

/// One encoded block of `i64` slot values (also the backing representation
/// for integer-representable float blocks).
#[derive(Debug, Clone)]
enum IntBlock {
    /// Every slot holds the same value.
    Const { value: i64, len: usize },
    /// Slots are `base + unpack(i)`, deltas bit-packed at `width` bits.
    Delta {
        base: i64,
        width: u32,
        len: usize,
        packed: Vec<u64>,
    },
    /// Verbatim values (incompressible block).
    Raw { values: Vec<i64> },
}

impl IntBlock {
    fn encode(values: &[i64]) -> IntBlock {
        let base = values.iter().copied().min().unwrap_or(0);
        // Wrapping subtraction is exact here: base ≤ v, so the true
        // difference fits in u64 and equals the wrapped bit pattern.
        let max_delta = values
            .iter()
            .map(|&v| v.wrapping_sub(base) as u64)
            .max()
            .unwrap_or(0);
        if max_delta == 0 {
            return IntBlock::Const {
                value: base,
                len: values.len(),
            };
        }
        let width = bit_width(max_delta);
        if width >= 64 {
            return IntBlock::Raw {
                values: values.to_vec(),
            };
        }
        let deltas: Vec<u64> = values
            .iter()
            .map(|&v| v.wrapping_sub(base) as u64)
            .collect();
        let packed = pack_bits(&deltas, width);
        if packed.len() >= values.len() {
            return IntBlock::Raw {
                values: values.to_vec(),
            };
        }
        IntBlock::Delta {
            base,
            width,
            len: values.len(),
            packed,
        }
    }

    fn len(&self) -> usize {
        match self {
            IntBlock::Const { len, .. } | IntBlock::Delta { len, .. } => *len,
            IntBlock::Raw { values } => values.len(),
        }
    }

    fn get(&self, i: usize) -> i64 {
        match self {
            IntBlock::Const { value, .. } => *value,
            IntBlock::Delta {
                base,
                width,
                packed,
                ..
            } => base.wrapping_add(unpack_bits(packed, *width, i) as i64),
            IntBlock::Raw { values } => values[i],
        }
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        match self {
            IntBlock::Const { value, len } => out.extend(std::iter::repeat_n(*value, *len)),
            IntBlock::Delta {
                base,
                width,
                len,
                packed,
            } => {
                out.extend(
                    (0..*len).map(|i| base.wrapping_add(unpack_bits(packed, *width, i) as i64)),
                );
            }
            IntBlock::Raw { values } => out.extend_from_slice(values),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            IntBlock::Const { .. } => 16,
            IntBlock::Delta { packed, .. } => 24 + packed.len() * 8,
            IntBlock::Raw { values } => 8 + values.len() * 8,
        }
    }
}

/// One encoded block of `f64` slot bit patterns.
#[derive(Debug, Clone)]
enum FloatBlock {
    /// Every slot carries the same bit pattern.
    Const { bits: u64, len: usize },
    /// Every slot is exactly integer-representable; stored as an
    /// [`IntBlock`] of the integer values.
    Ints(IntBlock),
    /// Verbatim bit patterns.
    Raw { bits: Vec<u64> },
}

/// Whether `v as i64 as f64` reproduces `v` bit-for-bit (rejects NaN, ±∞,
/// `-0.0`, fractional and out-of-range values).
fn integer_representable(v: f64) -> bool {
    ((v as i64) as f64).to_bits() == v.to_bits()
}

impl FloatBlock {
    fn encode(values: &[f64]) -> FloatBlock {
        let first = values.first().map_or(0, |v| v.to_bits());
        if values.iter().all(|v| v.to_bits() == first) {
            return FloatBlock::Const {
                bits: first,
                len: values.len(),
            };
        }
        if values.iter().copied().all(integer_representable) {
            let ints: Vec<i64> = values.iter().map(|&v| v as i64).collect();
            let block = IntBlock::encode(&ints);
            if block.payload_bytes() < 8 + values.len() * 8 {
                return FloatBlock::Ints(block);
            }
        }
        FloatBlock::Raw {
            bits: values.iter().map(|v| v.to_bits()).collect(),
        }
    }

    fn get(&self, i: usize) -> f64 {
        match self {
            FloatBlock::Const { bits, .. } => f64::from_bits(*bits),
            FloatBlock::Ints(block) => block.get(i) as f64,
            FloatBlock::Raw { bits } => f64::from_bits(bits[i]),
        }
    }

    fn decode_into(&self, out: &mut Vec<f64>) {
        match self {
            FloatBlock::Const { bits, len } => {
                out.extend(std::iter::repeat_n(f64::from_bits(*bits), *len));
            }
            FloatBlock::Ints(block) => {
                let start = out.len();
                out.extend((0..block.len()).map(|i| block.get(i) as f64));
                debug_assert_eq!(out.len() - start, block.len());
            }
            FloatBlock::Raw { bits } => out.extend(bits.iter().map(|&b| f64::from_bits(b))),
        }
    }

    fn len(&self) -> usize {
        match self {
            FloatBlock::Const { len, .. } => *len,
            FloatBlock::Ints(block) => block.len(),
            FloatBlock::Raw { bits } => bits.len(),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            FloatBlock::Const { .. } => 16,
            FloatBlock::Ints(block) => block.payload_bytes(),
            FloatBlock::Raw { bits } => 8 + bits.len() * 8,
        }
    }
}

/// One encoded block of dictionary codes.
#[derive(Debug, Clone)]
enum CodeBlock {
    /// `(code, run length)` runs in row order.
    Rle { runs: Vec<(u32, u32)> },
    /// Codes bit-packed at `width` bits.
    Packed {
        width: u32,
        len: usize,
        packed: Vec<u64>,
    },
}

impl CodeBlock {
    fn encode(codes: &[u32]) -> CodeBlock {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &c in codes {
            match runs.last_mut() {
                Some((code, n)) if *code == c => *n += 1,
                _ => runs.push((c, 1)),
            }
        }
        let max = codes.iter().copied().max().unwrap_or(0);
        let width = bit_width(u64::from(max)).max(1);
        let rle_bytes = 8 + runs.len() * 8;
        let packed_bytes = 16 + (codes.len() * width as usize).div_ceil(64) * 8;
        if rle_bytes <= packed_bytes {
            return CodeBlock::Rle { runs };
        }
        let widened: Vec<u64> = codes.iter().map(|&c| u64::from(c)).collect();
        CodeBlock::Packed {
            width,
            len: codes.len(),
            packed: pack_bits(&widened, width),
        }
    }

    fn len(&self) -> usize {
        match self {
            CodeBlock::Rle { runs } => runs.iter().map(|&(_, n)| n as usize).sum(),
            CodeBlock::Packed { len, .. } => *len,
        }
    }

    fn get(&self, i: usize) -> u32 {
        match self {
            CodeBlock::Rle { runs } => {
                let mut at = i;
                for &(code, n) in runs {
                    if at < n as usize {
                        return code;
                    }
                    at -= n as usize;
                }
                0
            }
            CodeBlock::Packed { width, packed, .. } => unpack_bits(packed, *width, i) as u32,
        }
    }

    fn decode_into(&self, out: &mut Vec<u32>) {
        match self {
            CodeBlock::Rle { runs } => {
                for &(code, n) in runs {
                    out.extend(std::iter::repeat_n(code, n as usize));
                }
            }
            CodeBlock::Packed {
                width,
                len,
                packed,
            } => out.extend((0..*len).map(|i| unpack_bits(packed, *width, i) as u32)),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            CodeBlock::Rle { runs } => 8 + runs.len() * 8,
            CodeBlock::Packed { packed, .. } => 16 + packed.len() * 8,
        }
    }
}

/// Per-block statistics over **valid** slots: min/max in `f64` total
/// order, null and finite counts. `min`/`max` are meaningless when
/// `valid == 0`.
#[derive(Debug, Clone, Copy)]
pub struct FloatZone {
    /// Smallest valid slot value under [`f64::total_cmp`].
    pub min: f64,
    /// Largest valid slot value under [`f64::total_cmp`].
    pub max: f64,
    /// Valid (non-null) slots in the block.
    pub valid: u32,
    /// Valid slots whose value is finite.
    pub finite: u32,
    /// Total slots in the block.
    pub len: u32,
}

impl FloatZone {
    fn compute(values: &[f64], validity: Option<&[bool]>) -> FloatZone {
        let mut zone = FloatZone {
            min: f64::NAN,
            max: f64::NAN,
            valid: 0,
            finite: 0,
            len: values.len() as u32,
        };
        for (i, &v) in values.iter().enumerate() {
            if validity.is_some_and(|m| !m[i]) {
                continue;
            }
            if zone.valid == 0 {
                zone.min = v;
                zone.max = v;
            } else {
                if v.total_cmp(&zone.min) == Ordering::Less {
                    zone.min = v;
                }
                if v.total_cmp(&zone.max) == Ordering::Greater {
                    zone.max = v;
                }
            }
            zone.valid += 1;
            zone.finite += u32::from(v.is_finite());
        }
        zone
    }
}

/// Per-block statistics for integer blocks: exact `i64` bounds over valid
/// slots (meaningless when `valid == 0`).
#[derive(Debug, Clone, Copy)]
pub struct IntZone {
    /// Smallest valid slot value.
    pub min: i64,
    /// Largest valid slot value.
    pub max: i64,
    /// Valid (non-null) slots in the block.
    pub valid: u32,
    /// Total slots in the block.
    pub len: u32,
}

impl IntZone {
    fn compute(values: &[i64], validity: Option<&[bool]>) -> IntZone {
        let mut zone = IntZone {
            min: 0,
            max: 0,
            valid: 0,
            len: values.len() as u32,
        };
        for (i, &v) in values.iter().enumerate() {
            if validity.is_some_and(|m| !m[i]) {
                continue;
            }
            if zone.valid == 0 {
                zone.min = v;
                zone.max = v;
            } else {
                zone.min = zone.min.min(v);
                zone.max = zone.max.max(v);
            }
            zone.valid += 1;
        }
        zone
    }

    /// The zone seen through the `as f64` cast the numeric predicate path
    /// applies. The cast is monotone, so the casted bounds are genuine
    /// total-order bounds of the casted value set (and never `-0.0`/NaN).
    fn as_float_zone(&self) -> FloatZone {
        FloatZone {
            min: self.min as f64,
            max: self.max as f64,
            valid: self.valid,
            finite: self.valid,
            len: self.len,
        }
    }
}

/// Code-block statistics: code bounds over valid slots.
#[derive(Debug, Clone, Copy)]
struct CodeZone {
    min: u32,
    max: u32,
    valid: u32,
}

impl CodeZone {
    fn compute(codes: &[u32], validity: Option<&[bool]>) -> CodeZone {
        let mut zone = CodeZone {
            min: 0,
            max: 0,
            valid: 0,
        };
        for (i, &c) in codes.iter().enumerate() {
            if validity.is_some_and(|m| !m[i]) {
                continue;
            }
            if zone.valid == 0 {
                zone.min = c;
                zone.max = c;
            } else {
                zone.min = zone.min.min(c);
                zone.max = zone.max.max(c);
            }
            zone.valid += 1;
        }
        zone
    }
}

/// A byte-compressed, lazily materialized string pool for sealed columns.
///
/// The pool is serialized as `[len: u32 LE][bytes]` per entry in code
/// order, byte-compressed with [`crate::lz`] when that actually shrinks
/// it, and re-interned on first access — codes are preserved because
/// [`StrDict::intern`] assigns sequential codes and the entries are
/// distinct by construction.
#[derive(Debug)]
pub struct SealedDict {
    payload: Vec<u8>,
    /// Uncompressed payload length (`payload` is stored raw when
    /// compression would not shrink it).
    raw_len: usize,
    compressed: bool,
    entries: usize,
    cache: OnceLock<Arc<StrDict>>,
}

impl SealedDict {
    fn seal(dict: &StrDict) -> SealedDict {
        let mut stream = Vec::new();
        for code in 0..dict.len() as u32 {
            let s = dict.resolve(code);
            stream.extend_from_slice(&(s.len() as u32).to_le_bytes());
            stream.extend_from_slice(s.as_bytes());
        }
        let raw_len = stream.len();
        let packed = lz::compress(&stream);
        let (payload, compressed) = if packed.len() < raw_len {
            (packed, true)
        } else {
            (stream, false)
        };
        SealedDict {
            payload,
            raw_len,
            compressed,
            entries: dict.len(),
            cache: OnceLock::new(),
        }
    }

    /// Number of distinct strings (available without materializing).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Materialize the pool (cached after the first call).
    pub fn dict(&self) -> Result<&Arc<StrDict>> {
        if let Some(dict) = self.cache.get() {
            return Ok(dict);
        }
        let raw = if self.compressed {
            lz::decompress(&self.payload, self.raw_len)?
        } else {
            self.payload.clone()
        };
        let mut dict = StrDict::new();
        let mut pos = 0usize;
        for _ in 0..self.entries {
            let header = raw
                .get(pos..pos + 4)
                .ok_or_else(|| RelationError::Eval("truncated sealed dictionary".to_string()))?;
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            pos += 4;
            let bytes = raw
                .get(pos..pos + len)
                .ok_or_else(|| RelationError::Eval("truncated sealed dictionary".to_string()))?;
            pos += len;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| RelationError::Eval("sealed dictionary is not UTF-8".to_string()))?;
            dict.intern(s);
        }
        Ok(self.cache.get_or_init(|| Arc::new(dict)))
    }

    fn payload_bytes(&self) -> usize {
        self.payload.len() + 32
    }
}

/// Block classification against a predicate, decided from the zone map
/// alone.
enum BlockClass {
    /// Every valid slot matches (null slots are cleared by the caller's
    /// validity pass).
    AllTrue,
    /// No valid slot matches.
    AllFalse,
    /// Undecidable from the zone: decode and test exactly.
    Decode,
}

/// Classify a comparison block. `lit` is the literal in the exact
/// semantics of the raw columnar path: `Eq`/`Ne` compare with IEEE
/// `==`/`!=`, ordering operators with [`f64::total_cmp`]. The zone's
/// min/max are total-order bounds of the valid slots, so:
///
/// - ordering predicates are threshold sets (up- or down-closed in the
///   total order) — both endpoints matching ⇒ all match, neither ⇒ none;
/// - IEEE equality's match set is a total-order *interval* once `±0.0` is
///   widened to `[-0.0, +0.0]` (a NaN literal matches nothing), so
///   disjointness/containment against `[min, max]` decides the block.
fn classify_cmp(zone: &FloatZone, op: CmpOp, lit: f64) -> BlockClass {
    if zone.valid == 0 {
        return BlockClass::AllFalse;
    }
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            if lit.is_nan() {
                // `v == NaN` is false and `v != NaN` is true for every v.
                return if op == CmpOp::Eq {
                    BlockClass::AllFalse
                } else {
                    BlockClass::AllTrue
                };
            }
            let (lo, hi) = if lit == 0.0 { (-0.0, 0.0) } else { (lit, lit) };
            let disjoint = zone.max.total_cmp(&lo) == Ordering::Less
                || zone.min.total_cmp(&hi) == Ordering::Greater;
            let contained = zone.min.total_cmp(&lo) != Ordering::Less
                && zone.max.total_cmp(&hi) != Ordering::Greater;
            match (op, disjoint, contained) {
                (CmpOp::Eq, true, _) => BlockClass::AllFalse,
                (CmpOp::Eq, _, true) => BlockClass::AllTrue,
                (CmpOp::Ne, true, _) => BlockClass::AllTrue,
                (CmpOp::Ne, _, true) => BlockClass::AllFalse,
                _ => BlockClass::Decode,
            }
        }
        _ => {
            let at_min = op.test(zone.min.total_cmp(&lit));
            let at_max = op.test(zone.max.total_cmp(&lit));
            match (at_min, at_max) {
                (true, true) => BlockClass::AllTrue,
                (false, false) => BlockClass::AllFalse,
                _ => BlockClass::Decode,
            }
        }
    }
}

/// Classify a half-open range block (`lo ≤ v < hi` under total order —
/// the `Between` semantics of the raw path). The match set is a
/// total-order interval, so endpoint membership and disjointness decide.
fn classify_between(zone: &FloatZone, lo: f64, hi: f64) -> BlockClass {
    if zone.valid == 0 {
        return BlockClass::AllFalse;
    }
    let inside = |v: f64| v.total_cmp(&lo) != Ordering::Less && v.total_cmp(&hi) == Ordering::Less;
    if inside(zone.min) && inside(zone.max) {
        return BlockClass::AllTrue;
    }
    if zone.max.total_cmp(&lo) == Ordering::Less || zone.min.total_cmp(&hi) != Ordering::Less {
        return BlockClass::AllFalse;
    }
    BlockClass::Decode
}

/// The typed block plane of a compressed column.
#[derive(Debug)]
enum Plane {
    /// A compressed `Float64` column.
    Floats {
        blocks: Vec<FloatBlock>,
        zones: Vec<FloatZone>,
        decoded: OnceLock<Arc<Vec<f64>>>,
    },
    /// A compressed `Int64` column.
    Ints {
        blocks: Vec<IntBlock>,
        zones: Vec<IntZone>,
        decoded: OnceLock<Arc<Vec<i64>>>,
    },
    /// A compressed `Utf8` column (codes plus sealed dictionary).
    Codes {
        dict: SealedDict,
        blocks: Vec<CodeBlock>,
        zones: Vec<CodeZone>,
        decoded: OnceLock<Arc<Vec<u32>>>,
    },
}

/// A column's value buffer as per-block encodings plus zone maps. Owned
/// behind an `Arc` by [`crate::Column::Compressed`]; the validity mask
/// stays raw on the column itself.
#[derive(Debug)]
pub struct CompressedColumn {
    len: usize,
    plane: Plane,
    /// Blocks answered from the zone map alone (monotone).
    skipped: AtomicU64,
    /// Blocks that had to be decoded for an exact test (monotone).
    scanned: AtomicU64,
}

/// Split a buffer into the canonical block grid.
fn block_slices<T>(values: &[T]) -> impl Iterator<Item = (usize, &[T])> {
    values
        .chunks(GRAM_BLOCK_ROWS)
        .enumerate()
        .map(|(b, chunk)| (b * GRAM_BLOCK_ROWS, chunk))
}

fn validity_window(validity: Option<&[bool]>, start: usize, len: usize) -> Option<&[bool]> {
    validity.map(|m| &m[start..start + len])
}

impl CompressedColumn {
    /// Encode a `Float64` buffer (slot values verbatim, null slots
    /// included).
    pub fn from_floats(values: &[f64], validity: Option<&[bool]>) -> CompressedColumn {
        let mut blocks = Vec::with_capacity(values.len().div_ceil(GRAM_BLOCK_ROWS));
        let mut zones = Vec::with_capacity(blocks.capacity());
        for (start, chunk) in block_slices(values) {
            blocks.push(FloatBlock::encode(chunk));
            zones.push(FloatZone::compute(
                chunk,
                validity_window(validity, start, chunk.len()),
            ));
        }
        CompressedColumn {
            len: values.len(),
            plane: Plane::Floats {
                blocks,
                zones,
                decoded: OnceLock::new(),
            },
            skipped: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
        }
    }

    /// Encode an `Int64` buffer.
    pub fn from_ints(values: &[i64], validity: Option<&[bool]>) -> CompressedColumn {
        let mut blocks = Vec::with_capacity(values.len().div_ceil(GRAM_BLOCK_ROWS));
        let mut zones = Vec::with_capacity(blocks.capacity());
        for (start, chunk) in block_slices(values) {
            blocks.push(IntBlock::encode(chunk));
            zones.push(IntZone::compute(
                chunk,
                validity_window(validity, start, chunk.len()),
            ));
        }
        CompressedColumn {
            len: values.len(),
            plane: Plane::Ints {
                blocks,
                zones,
                decoded: OnceLock::new(),
            },
            skipped: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
        }
    }

    /// Encode a dictionary-coded `Utf8` buffer, sealing the pool.
    pub fn from_codes(
        dict: &StrDict,
        codes: &[u32],
        validity: Option<&[bool]>,
    ) -> CompressedColumn {
        let mut blocks = Vec::with_capacity(codes.len().div_ceil(GRAM_BLOCK_ROWS));
        let mut zones = Vec::with_capacity(blocks.capacity());
        for (start, chunk) in block_slices(codes) {
            blocks.push(CodeBlock::encode(chunk));
            zones.push(CodeZone::compute(
                chunk,
                validity_window(validity, start, chunk.len()),
            ));
        }
        CompressedColumn {
            len: codes.len(),
            plane: Plane::Codes {
                dict: SealedDict::seal(dict),
                blocks,
                zones,
                decoded: OnceLock::new(),
            },
            skipped: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The logical data type the blocks decode to.
    pub fn dtype(&self) -> DataType {
        match &self.plane {
            Plane::Floats { .. } => DataType::Float64,
            Plane::Ints { .. } => DataType::Int64,
            Plane::Codes { .. } => DataType::Utf8,
        }
    }

    /// Whether the plane decodes to a numeric type.
    pub fn is_numeric(&self) -> bool {
        !matches!(self.plane, Plane::Codes { .. })
    }

    /// Raw `f64` slot value (Floats plane only; panics on other planes
    /// like an out-of-variant field access would).
    pub(crate) fn float_slot(&self, i: usize) -> f64 {
        match &self.plane {
            Plane::Floats { blocks, decoded, .. } => match decoded.get() {
                Some(buf) => buf[i],
                None => blocks[i / GRAM_BLOCK_ROWS].get(i % GRAM_BLOCK_ROWS),
            },
            // lint:allow(no-panic-in-request-path: callers dispatch on dtype() first; a wrong-plane access is a dispatch bug, not an input condition)
            _ => unreachable!("float_slot on a non-float plane"),
        }
    }

    /// Raw `i64` slot value (Ints plane only).
    pub(crate) fn int_slot(&self, i: usize) -> i64 {
        match &self.plane {
            Plane::Ints { blocks, decoded, .. } => match decoded.get() {
                Some(buf) => buf[i],
                None => blocks[i / GRAM_BLOCK_ROWS].get(i % GRAM_BLOCK_ROWS),
            },
            // lint:allow(no-panic-in-request-path: callers dispatch on dtype() first; a wrong-plane access is a dispatch bug, not an input condition)
            _ => unreachable!("int_slot on a non-int plane"),
        }
    }

    /// Raw code slot value (Codes plane only).
    pub(crate) fn code_slot(&self, i: usize) -> u32 {
        match &self.plane {
            Plane::Codes { blocks, decoded, .. } => match decoded.get() {
                Some(buf) => buf[i],
                None => blocks[i / GRAM_BLOCK_ROWS].get(i % GRAM_BLOCK_ROWS),
            },
            // lint:allow(no-panic-in-request-path: callers dispatch on dtype() first; a wrong-plane access is a dispatch bug, not an input condition)
            _ => unreachable!("code_slot on a non-code plane"),
        }
    }

    /// The fully decoded `f64` buffer (Floats plane), decoded once and
    /// shared — the buffer [`crate::Column::numeric_view`] re-wraps, so
    /// every downstream reduction folds the identical allocation.
    pub fn decode_floats(&self) -> Option<&Arc<Vec<f64>>> {
        match &self.plane {
            Plane::Floats {
                blocks, decoded, ..
            } => Some(decoded.get_or_init(|| {
                let mut out = Vec::with_capacity(self.len);
                for block in blocks {
                    block.decode_into(&mut out);
                }
                Arc::new(out)
            })),
            _ => None,
        }
    }

    /// The fully decoded `i64` buffer (Ints plane), decoded once.
    pub fn decode_ints(&self) -> Option<&Arc<Vec<i64>>> {
        match &self.plane {
            Plane::Ints {
                blocks, decoded, ..
            } => Some(decoded.get_or_init(|| {
                let mut out = Vec::with_capacity(self.len);
                for block in blocks {
                    block.decode_into(&mut out);
                }
                Arc::new(out)
            })),
            _ => None,
        }
    }

    /// The fully decoded code buffer (Codes plane), decoded once.
    pub fn decode_codes(&self) -> Option<&Arc<Vec<u32>>> {
        match &self.plane {
            Plane::Codes {
                blocks, decoded, ..
            } => Some(decoded.get_or_init(|| {
                let mut out = Vec::with_capacity(self.len);
                for block in blocks {
                    block.decode_into(&mut out);
                }
                Arc::new(out)
            })),
            _ => None,
        }
    }

    /// The materialized dictionary (Codes plane).
    pub fn dict(&self) -> Option<Result<&Arc<StrDict>>> {
        match &self.plane {
            Plane::Codes { dict, .. } => Some(dict.dict()),
            _ => None,
        }
    }

    /// Distinct strings in the sealed pool without materializing it.
    pub fn dict_entries(&self) -> Option<usize> {
        match &self.plane {
            Plane::Codes { dict, .. } => Some(dict.entries()),
            _ => None,
        }
    }

    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// `(blocks answered from zone maps, blocks decoded for exact tests)`
    /// since construction.
    pub fn zone_stats(&self) -> (u64, u64) {
        (
            self.skipped.load(AtomicOrdering::Relaxed),
            self.scanned.load(AtomicOrdering::Relaxed),
        )
    }

    /// Walk blocks for a numeric predicate: `classify` decides each block
    /// from its zone; undecided blocks are decoded and tested per slot
    /// with `exact` (which receives the decoded slot value).
    fn numeric_blocks_mask(
        &self,
        classify: impl Fn(&FloatZone) -> BlockClass,
        exact: impl Fn(f64) -> bool,
    ) -> Option<Vec<bool>> {
        let mut mask = Vec::with_capacity(self.len);
        match &self.plane {
            Plane::Floats { blocks, zones, .. } => {
                let mut scratch: Vec<f64> = Vec::with_capacity(GRAM_BLOCK_ROWS);
                for (block, zone) in blocks.iter().zip(zones) {
                    match classify(zone) {
                        BlockClass::AllTrue => {
                            self.bump(&self.skipped);
                            mask.extend(std::iter::repeat_n(true, block.len()));
                        }
                        BlockClass::AllFalse => {
                            self.bump(&self.skipped);
                            mask.extend(std::iter::repeat_n(false, block.len()));
                        }
                        BlockClass::Decode => {
                            self.bump(&self.scanned);
                            scratch.clear();
                            block.decode_into(&mut scratch);
                            mask.extend(scratch.iter().map(|&v| exact(v)));
                        }
                    }
                }
                Some(mask)
            }
            Plane::Ints { blocks, zones, .. } => {
                let mut scratch: Vec<i64> = Vec::with_capacity(GRAM_BLOCK_ROWS);
                for (block, zone) in blocks.iter().zip(zones) {
                    match classify(&zone.as_float_zone()) {
                        BlockClass::AllTrue => {
                            self.bump(&self.skipped);
                            mask.extend(std::iter::repeat_n(true, block.len()));
                        }
                        BlockClass::AllFalse => {
                            self.bump(&self.skipped);
                            mask.extend(std::iter::repeat_n(false, block.len()));
                        }
                        BlockClass::Decode => {
                            self.bump(&self.scanned);
                            scratch.clear();
                            block.decode_into(&mut scratch);
                            mask.extend(scratch.iter().map(|&v| exact(v as f64)));
                        }
                    }
                }
                Some(mask)
            }
            Plane::Codes { .. } => None,
        }
    }

    /// Zone-pruned mask for `slot OP lit` under the raw columnar
    /// semantics (`Eq`/`Ne` IEEE, ordering via `total_cmp`). `None` for
    /// the codes plane. The mask covers **slots** — the caller clears
    /// null rows, exactly like the raw path.
    pub fn numeric_cmp_mask(&self, op: CmpOp, lit: f64) -> Option<Vec<bool>> {
        self.numeric_blocks_mask(
            |zone| classify_cmp(zone, op, lit),
            move |v| match op {
                CmpOp::Eq => v == lit,
                CmpOp::Ne => v != lit,
                _ => op.test(v.total_cmp(&lit)),
            },
        )
    }

    /// Zone-pruned mask for `lo ≤ slot < hi` under total order (`None`
    /// for the codes plane).
    pub fn between_mask(&self, lo: f64, hi: f64) -> Option<Vec<bool>> {
        self.numeric_blocks_mask(
            |zone| classify_between(zone, lo, hi),
            move |v| {
                v.total_cmp(&lo) != Ordering::Less && v.total_cmp(&hi) == Ordering::Less
            },
        )
    }

    /// Zone-pruned mask for exact `i64` equality (`Eq`) or inequality
    /// (`Ne`) — the raw path's integer-precision shape. `None` unless
    /// this is the Ints plane.
    pub fn int_eq_mask(&self, op: CmpOp, lit: i64) -> Option<Vec<bool>> {
        let Plane::Ints { blocks, zones, .. } = &self.plane else {
            return None;
        };
        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            return None;
        }
        let ne = op == CmpOp::Ne;
        let mut mask = Vec::with_capacity(self.len);
        let mut scratch: Vec<i64> = Vec::with_capacity(GRAM_BLOCK_ROWS);
        for (block, zone) in blocks.iter().zip(zones) {
            let class = if zone.valid == 0 {
                BlockClass::AllFalse
            } else if lit < zone.min || lit > zone.max {
                // No valid slot equals the literal.
                if ne {
                    BlockClass::AllTrue
                } else {
                    BlockClass::AllFalse
                }
            } else if zone.min == zone.max {
                // Every valid slot equals the literal.
                if ne {
                    BlockClass::AllFalse
                } else {
                    BlockClass::AllTrue
                }
            } else {
                BlockClass::Decode
            };
            match class {
                BlockClass::AllTrue => {
                    self.bump(&self.skipped);
                    mask.extend(std::iter::repeat_n(true, block.len()));
                }
                BlockClass::AllFalse => {
                    self.bump(&self.skipped);
                    mask.extend(std::iter::repeat_n(false, block.len()));
                }
                BlockClass::Decode => {
                    self.bump(&self.scanned);
                    scratch.clear();
                    block.decode_into(&mut scratch);
                    mask.extend(scratch.iter().map(|&v| (v == lit) != ne));
                }
            }
        }
        Some(mask)
    }

    /// Zone-pruned mask for dictionary-code equality (`Eq`) or inequality
    /// (`Ne`); `target` is the literal's resolved code (`None` when the
    /// string is not in the pool — the raw path's "never present" shape).
    /// `None` unless this is the Codes plane.
    pub fn code_eq_mask(&self, op: CmpOp, target: Option<u32>) -> Option<Vec<bool>> {
        let Plane::Codes { blocks, zones, .. } = &self.plane else {
            return None;
        };
        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            return None;
        }
        let ne = op == CmpOp::Ne;
        let Some(code) = target else {
            // Not interned: Eq matches nothing, Ne matches every slot
            // (nulls cleared by the caller).
            return Some(vec![ne; self.len]);
        };
        let mut mask = Vec::with_capacity(self.len);
        let mut scratch: Vec<u32> = Vec::with_capacity(GRAM_BLOCK_ROWS);
        for (block, zone) in blocks.iter().zip(zones) {
            let class = if zone.valid == 0 {
                BlockClass::AllFalse
            } else if code < zone.min || code > zone.max {
                if ne {
                    BlockClass::AllTrue
                } else {
                    BlockClass::AllFalse
                }
            } else if zone.min == zone.max {
                if ne {
                    BlockClass::AllFalse
                } else {
                    BlockClass::AllTrue
                }
            } else {
                BlockClass::Decode
            };
            match class {
                BlockClass::AllTrue => {
                    self.bump(&self.skipped);
                    mask.extend(std::iter::repeat_n(true, block.len()));
                }
                BlockClass::AllFalse => {
                    self.bump(&self.skipped);
                    mask.extend(std::iter::repeat_n(false, block.len()));
                }
                BlockClass::Decode => {
                    self.bump(&self.scanned);
                    scratch.clear();
                    block.decode_into(&mut scratch);
                    mask.extend(scratch.iter().map(|&c| (c == code) != ne));
                }
            }
        }
        Some(mask)
    }

    /// Approximate resident bytes, deduplicated by allocation identity
    /// through `seen` (see `Column::approx_bytes_dedup`): the static block
    /// payload is keyed by this value's own address, and lazily
    /// materialized caches are keyed by their `Arc` allocations so a
    /// session view aliasing the decoded buffer is not double-charged.
    pub(crate) fn approx_bytes_dedup(&self, seen: &mut HashSet<usize>) -> usize {
        let mut total = if seen.insert(self as *const CompressedColumn as usize) {
            self.static_bytes()
        } else {
            0
        };
        let mut note = |ptr: usize, bytes: usize| {
            if seen.insert(ptr) {
                bytes
            } else {
                0
            }
        };
        match &self.plane {
            Plane::Floats { decoded, .. } => {
                if let Some(buf) = decoded.get() {
                    total += note(Arc::as_ptr(buf) as usize, buf.len() * 8);
                }
            }
            Plane::Ints { decoded, .. } => {
                if let Some(buf) = decoded.get() {
                    total += note(Arc::as_ptr(buf) as usize, buf.len() * 8);
                }
            }
            Plane::Codes { dict, decoded, .. } => {
                if let Some(buf) = decoded.get() {
                    total += note(Arc::as_ptr(buf) as usize, buf.len() * 4);
                }
                if let Some(d) = dict.cache.get() {
                    total += note(Arc::as_ptr(d) as usize, d.approx_bytes());
                }
            }
        }
        total
    }

    /// The compressed payload alone (blocks, zones, sealed dictionary) —
    /// no materialized caches.
    pub fn static_bytes(&self) -> usize {
        match &self.plane {
            Plane::Floats { blocks, zones, .. } => {
                blocks.iter().map(FloatBlock::payload_bytes).sum::<usize>()
                    + zones.len() * std::mem::size_of::<FloatZone>()
            }
            Plane::Ints { blocks, zones, .. } => {
                blocks.iter().map(IntBlock::payload_bytes).sum::<usize>()
                    + zones.len() * std::mem::size_of::<IntZone>()
            }
            Plane::Codes {
                dict,
                blocks,
                zones,
                ..
            } => {
                dict.payload_bytes()
                    + blocks.iter().map(CodeBlock::payload_bytes).sum::<usize>()
                    + zones.len() * std::mem::size_of::<CodeZone>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrips_all_widths() {
        for width in 1..=63u32 {
            let max = if width == 63 {
                u64::MAX >> 1
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..200u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & max)
                .collect();
            let packed = pack_bits(&values, width);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(unpack_bits(&packed, width, i), v, "width {width} slot {i}");
            }
        }
    }

    #[test]
    fn float_blocks_choose_and_roundtrip() {
        // Constant block.
        let constant = vec![7.25f64; GRAM_BLOCK_ROWS];
        assert!(matches!(
            FloatBlock::encode(&constant),
            FloatBlock::Const { .. }
        ));
        // Rounded payroll-style integers take the delta path.
        let salaries: Vec<f64> = (0..GRAM_BLOCK_ROWS).map(|i| 52_000.0 + i as f64).collect();
        let block = FloatBlock::encode(&salaries);
        assert!(matches!(block, FloatBlock::Ints(_)), "{block:?}");
        let mut out = Vec::new();
        block.decode_into(&mut out);
        let bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        let raw: Vec<u64> = salaries.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, raw);
        // NaN / ±∞ / -0.0 force the raw path and survive bit-for-bit.
        let weird = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1.5e-300];
        let block = FloatBlock::encode(&weird);
        assert!(matches!(block, FloatBlock::Raw { .. }));
        let mut out = Vec::new();
        block.decode_into(&mut out);
        for (a, b) in out.iter().zip(weird.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn code_blocks_pick_rle_for_runs() {
        let runs: Vec<u32> = std::iter::repeat_n(3u32, 90)
            .chain(std::iter::repeat_n(1u32, 38))
            .collect();
        let block = CodeBlock::encode(&runs);
        assert!(matches!(block, CodeBlock::Rle { .. }));
        let mut out = Vec::new();
        block.decode_into(&mut out);
        assert_eq!(out, runs);
        // High-churn codes pick bit packing.
        let churn: Vec<u32> = (0..128u32).map(|i| i % 7).collect();
        let block = CodeBlock::encode(&churn);
        assert!(matches!(block, CodeBlock::Packed { .. }));
        let mut out = Vec::new();
        block.decode_into(&mut out);
        assert_eq!(out, churn);
        for (i, &c) in churn.iter().enumerate() {
            assert_eq!(block.get(i), c);
        }
    }

    #[test]
    fn sealed_dict_preserves_codes() {
        let mut dict = StrDict::new();
        for s in ["POL", "FRS", "HHS", "DOT", "LIB"] {
            dict.intern(s);
        }
        let sealed = SealedDict::seal(&dict);
        assert_eq!(sealed.entries(), 5);
        let back = sealed.dict().unwrap();
        assert_eq!(back.len(), 5);
        for code in 0..5u32 {
            assert_eq!(back.resolve(code), dict.resolve(code));
            assert_eq!(back.code_of(dict.resolve(code)), Some(code));
        }
    }

    #[test]
    fn zone_pruning_skips_blocks_and_matches_exact_scan() {
        // Two value regimes in separate blocks: the first block is all
        // 10.0, the second climbs 100..  — an Eq(10.0) must skip both
        // blocks (one all-true, one all-false).
        let mut values = vec![10.0f64; GRAM_BLOCK_ROWS];
        values.extend((0..GRAM_BLOCK_ROWS).map(|i| 100.0 + i as f64));
        let col = CompressedColumn::from_floats(&values, None);
        let mask = col.numeric_cmp_mask(CmpOp::Eq, 10.0).unwrap();
        let expect: Vec<bool> = values.iter().map(|&v| v == 10.0).collect();
        assert_eq!(mask, expect);
        let (skipped, scanned) = col.zone_stats();
        assert_eq!((skipped, scanned), (2, 0), "both blocks decided by zones");
        // A threshold cutting through block 2 must decode only block 2.
        let mask = col.numeric_cmp_mask(CmpOp::Ge, 150.0).unwrap();
        let expect: Vec<bool> = values
            .iter()
            .map(|&v| v.total_cmp(&150.0) != Ordering::Less)
            .collect();
        assert_eq!(mask, expect);
        let (skipped, scanned) = col.zone_stats();
        assert_eq!((skipped, scanned), (3, 1));
    }

    #[test]
    fn zero_literal_eq_handles_signed_zero() {
        let values = [-0.0f64, 0.0, 1.0, -1.0];
        let col = CompressedColumn::from_floats(&values, None);
        let mask = col.numeric_cmp_mask(CmpOp::Eq, 0.0).unwrap();
        assert_eq!(mask, vec![true, true, false, false]);
        let mask = col.numeric_cmp_mask(CmpOp::Eq, -0.0).unwrap();
        assert_eq!(mask, vec![true, true, false, false]);
        // An all-zero block (mixed signs) must classify all-true, not
        // decode: its total-order zone is exactly [-0.0, +0.0].
        let zeros = [-0.0f64, 0.0, -0.0, 0.0];
        let col = CompressedColumn::from_floats(&zeros, None);
        let mask = col.numeric_cmp_mask(CmpOp::Eq, 0.0).unwrap();
        assert_eq!(mask, vec![true; 4]);
        assert_eq!(col.zone_stats(), (1, 0));
    }

    #[test]
    fn nan_literals_short_circuit() {
        let values = [1.0f64, f64::NAN, 3.0];
        let col = CompressedColumn::from_floats(&values, None);
        assert_eq!(
            col.numeric_cmp_mask(CmpOp::Eq, f64::NAN).unwrap(),
            vec![false; 3]
        );
        assert_eq!(
            col.numeric_cmp_mask(CmpOp::Ne, f64::NAN).unwrap(),
            vec![true; 3]
        );
        // NaN slot under ordering: total_cmp sorts NaN above +∞, so
        // Ge(2.0) includes it — identical to the raw columnar loop.
        assert_eq!(
            col.numeric_cmp_mask(CmpOp::Ge, 2.0).unwrap(),
            vec![false, true, true]
        );
    }

    #[test]
    fn all_null_blocks_never_match() {
        let values = vec![0.0f64; GRAM_BLOCK_ROWS + 3];
        let validity = vec![false; GRAM_BLOCK_ROWS + 3];
        let col = CompressedColumn::from_floats(&values, Some(&validity));
        let mask = col.numeric_cmp_mask(CmpOp::Eq, 0.0).unwrap();
        assert_eq!(mask, vec![false; GRAM_BLOCK_ROWS + 3]);
        assert_eq!(col.zone_stats().1, 0, "no block should decode");
    }

    #[test]
    fn int_plane_exact_equality_and_cast_ordering() {
        let values: Vec<i64> = (0..300).map(|i| (i % 19) - 9).collect();
        let col = CompressedColumn::from_ints(&values, None);
        let mask = col.int_eq_mask(CmpOp::Eq, 3).unwrap();
        let expect: Vec<bool> = values.iter().map(|&v| v == 3).collect();
        assert_eq!(mask, expect);
        let mask = col.numeric_cmp_mask(CmpOp::Lt, 0.5).unwrap();
        let expect: Vec<bool> = values
            .iter()
            .map(|&v| (v as f64).total_cmp(&0.5) == Ordering::Less)
            .collect();
        assert_eq!(mask, expect);
        // Huge magnitudes stress the i64↔f64 cast boundary.
        let big = [i64::MAX, i64::MAX - 1, i64::MIN, 0];
        let col = CompressedColumn::from_ints(&big, None);
        let decoded = col.decode_ints().unwrap();
        assert_eq!(decoded.as_slice(), &big);
        let mask = col.int_eq_mask(CmpOp::Eq, i64::MAX).unwrap();
        assert_eq!(mask, vec![true, false, false, false]);
    }

    #[test]
    fn between_mask_matches_exact() {
        let values: Vec<f64> = (0..260).map(|i| i as f64 * 0.5).collect();
        let col = CompressedColumn::from_floats(&values, None);
        let mask = col.between_mask(10.0, 60.0).unwrap();
        let expect: Vec<bool> = values
            .iter()
            .map(|&v| {
                v.total_cmp(&10.0) != Ordering::Less && v.total_cmp(&60.0) == Ordering::Less
            })
            .collect();
        assert_eq!(mask, expect);
    }
}
