//! CSV reading and writing with type inference.
//!
//! Supports RFC-4180-style quoting (`"..."` with doubled inner quotes),
//! per-column type sniffing (Int64 → Float64 → Bool → Utf8 fallback), and
//! empty-field-as-null. Small by design: enough to load the demo datasets
//! (Montgomery payroll, billionaires list) and round-trip our own output.

use crate::column::Column;
use crate::error::{RelationError, Result};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Strip one trailing carriage return. `BufRead::lines` removes `\r\n` on
/// newline-terminated lines, but a Windows-exported file whose final
/// record lacks a trailing newline (or uses lone-`\r` endings) leaves the
/// `\r` glued to the last field — silently corrupting every value parsed
/// from it.
fn strip_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Strip a UTF-8 byte-order mark. Excel and friends prepend one; without
/// this the BOM becomes part of the first header name and target
/// resolution (`column_by_name`) fails for it.
fn strip_bom(line: &str) -> &str {
    line.strip_prefix('\u{feff}').unwrap_or(line)
}

/// Parse one CSV record (handles quotes); returns fields.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelationError::CsvParse {
                            line: line_no,
                            message: "unexpected quote mid-field".to_string(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::CsvParse {
            line: line_no,
            message: "unterminated quoted field".to_string(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// The narrowest type that can represent every non-empty string in a column.
fn sniff_type(raw: &[Vec<String>], col: usize) -> DataType {
    let mut candidate = DataType::Int64;
    let mut saw_value = false;
    for row in raw {
        let s = row[col].trim();
        if s.is_empty() {
            continue;
        }
        saw_value = true;
        match candidate {
            DataType::Int64 => {
                if s.parse::<i64>().is_ok() {
                    continue;
                }
                candidate = DataType::Float64;
                if parse_float(s).is_some() {
                    continue;
                }
                candidate = DataType::Bool;
                if parse_bool(s).is_some() {
                    continue;
                }
                return DataType::Utf8;
            }
            DataType::Float64 => {
                if parse_float(s).is_some() {
                    continue;
                }
                return DataType::Utf8;
            }
            DataType::Bool => {
                if parse_bool(s).is_some() {
                    continue;
                }
                return DataType::Utf8;
            }
            DataType::Utf8 => return DataType::Utf8,
        }
    }
    if saw_value {
        candidate
    } else {
        DataType::Utf8
    }
}

fn parse_float(s: &str) -> Option<f64> {
    // Tolerate currency formatting: "$1,234.50" -> 1234.50.
    let cleaned: String = s
        .chars()
        .filter(|&c| c != '$' && c != ',' && c != ' ')
        .collect();
    cleaned.parse::<f64>().ok().filter(|v| v.is_finite())
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.to_ascii_lowercase().as_str() {
        "true" | "t" | "yes" => Some(true),
        "false" | "f" | "no" => Some(false),
        _ => None,
    }
}

fn parse_cell(s: &str, dtype: DataType, line: usize) -> Result<Value> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int64 => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| RelationError::CsvParse {
                line,
                message: format!("bad integer {s:?}: {e}"),
            }),
        DataType::Float64 => {
            parse_float(s)
                .map(Value::Float)
                .ok_or_else(|| RelationError::CsvParse {
                    line,
                    message: format!("bad float {s:?}"),
                })
        }
        DataType::Bool => parse_bool(s)
            .map(Value::Bool)
            .ok_or_else(|| RelationError::CsvParse {
                line,
                message: format!("bad bool {s:?}"),
            }),
        DataType::Utf8 => Ok(Value::str(s)),
    }
}

/// Read a CSV document (first line = header) with inferred column types.
pub fn read_csv<R: Read>(reader: R) -> Result<Table> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = match lines.next() {
        Some(l) => l?,
        None => {
            return Err(RelationError::CsvParse {
                line: 1,
                message: "empty input: missing header".to_string(),
            })
        }
    };
    let header = parse_record(strip_cr(strip_bom(&header_line)), 1)?;
    let width = header.len();

    let mut raw: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line = strip_cr(&line);
        if line.is_empty() {
            // For a single-column document an empty line is a legitimate
            // record holding one empty (null) field; for wider schemas it
            // is a blank separator line and is skipped.
            if width == 1 {
                raw.push(vec![String::new()]);
            }
            continue;
        }
        let rec = parse_record(&line, i + 2)?;
        if rec.len() != width {
            return Err(RelationError::CsvParse {
                line: i + 2,
                message: format!("expected {width} fields, found {}", rec.len()),
            });
        }
        raw.push(rec);
    }

    let dtypes: Vec<DataType> = (0..width).map(|c| sniff_type(&raw, c)).collect();
    let schema = Schema::new(
        header
            .iter()
            .zip(dtypes.iter())
            .map(|(name, &dtype)| Field::new(name.trim(), dtype))
            .collect(),
    )?;

    let mut columns: Vec<Column> = dtypes.iter().map(|&t| Column::empty(t)).collect();
    for (r, rec) in raw.iter().enumerate() {
        for (c, cell) in rec.iter().enumerate() {
            columns[c].push(parse_cell(cell, dtypes[c], r + 2)?)?;
        }
    }
    Table::new(schema, columns)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Table> {
    let file = std::fs::File::open(path.as_ref())?;
    Ok(read_csv(file)?.with_name(path.as_ref().display().to_string()))
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write a table as CSV (header + rows). Nulls serialize as empty fields.
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> Result<()> {
    let mut out = std::io::BufWriter::new(writer);
    let names = table.schema().names();
    writeln!(out, "{}", names.join(","))?;
    for row in table.row_ids() {
        let mut first = true;
        for col in table.columns() {
            if !first {
                write!(out, ",")?;
            }
            first = false;
            let v = col.get(row);
            if !v.is_null() {
                write!(out, "{}", escape(&v.to_string()))?;
            }
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Write a table to a CSV file.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_csv(table, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_typed_columns() {
        let data = "name,exp,salary,active\nAnne,2,230000.5,true\nBob,3,250000,false\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.schema().dtype_of("name").unwrap(), DataType::Utf8);
        assert_eq!(t.schema().dtype_of("exp").unwrap(), DataType::Int64);
        assert_eq!(t.schema().dtype_of("salary").unwrap(), DataType::Float64);
        assert_eq!(t.schema().dtype_of("active").unwrap(), DataType::Bool);
        assert_eq!(t.value(0, "salary").unwrap(), Value::Float(230_000.5));
    }

    #[test]
    fn currency_and_thousands_separators() {
        let data = "pay\n\"$1,234.50\"\n$99\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.schema().dtype_of("pay").unwrap(), DataType::Float64);
        assert_eq!(t.value(0, "pay").unwrap(), Value::Float(1234.5));
        assert_eq!(t.value(1, "pay").unwrap(), Value::Float(99.0));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let data = "a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.value(0, "a").unwrap(), Value::str("x, y"));
        assert_eq!(t.value(0, "b").unwrap(), Value::str("he said \"hi\""));
    }

    #[test]
    fn empty_fields_become_null() {
        let data = "a,b\n1,\n,2\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
        assert_eq!(t.column_by_name("a").unwrap().null_count(), 1);
    }

    #[test]
    fn mixed_int_float_widens() {
        let data = "x\n1\n2.5\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.schema().dtype_of("x").unwrap(), DataType::Float64);
    }

    #[test]
    fn ragged_rows_rejected() {
        let data = "a,b\n1\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        assert!(matches!(err, RelationError::CsvParse { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let data = "a\n\"oops\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn crlf_ingests_identically_to_lf() {
        let lf = "name,exp,salary\nAnne,2,230000.5\nBob,3,250000\n";
        let crlf = lf.replace('\n', "\r\n");
        let a = read_csv(lf.as_bytes()).unwrap();
        let b = read_csv(crlf.as_bytes()).unwrap();
        assert!(a.content_eq(&b));
        // No \r embedded in the last column's values or its header name.
        assert_eq!(b.value(1, "salary").unwrap(), Value::Float(250_000.0));
    }

    #[test]
    fn crlf_final_line_without_newline() {
        // The residual case `BufRead::lines` does not cover: the last
        // record keeps its \r when the trailing newline is missing.
        let data = "a,b\r\n1,x\r\n2,y\r";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.value(1, "b").unwrap(), Value::str("y"));
    }

    #[test]
    fn bom_stripped_from_first_header() {
        let data = "\u{feff}name,exp\nAnne,2\n";
        let t = read_csv(data.as_bytes()).unwrap();
        // Target resolution by plain name must work.
        assert_eq!(t.value(0, "name").unwrap(), Value::str("Anne"));
        assert_eq!(t.schema().dtype_of("exp").unwrap(), DataType::Int64);
        // BOM + CRLF together (the typical Excel export).
        let both = "\u{feff}name,exp\r\nAnne,2\r\n";
        assert!(t.content_eq(&read_csv(both.as_bytes()).unwrap()));
    }

    #[test]
    fn quoted_fields_interact_with_crlf() {
        // Quoted commas and doubled quotes on CRLF-terminated lines; the
        // quoted field is the *last* column, where a stray \r would land.
        let data = "a,b\r\n1,\"x, y\"\r\n2,\"he said \"\"hi\"\"\"\r\n";
        let t = read_csv(data.as_bytes()).unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::str("x, y"));
        assert_eq!(t.value(1, "b").unwrap(), Value::str("he said \"hi\""));
        let lf_twin = data.replace("\r\n", "\n");
        assert!(t.content_eq(&read_csv(lf_twin.as_bytes()).unwrap()));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let data = "name,exp,salary\n\"Lee, Anne\",2,230000.0\nBob,,250000.0\n";
        let t = read_csv(data.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv(buf.as_slice()).unwrap();
        assert!(t.content_eq(&t2));
    }
}
