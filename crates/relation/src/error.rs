//! Error types for the relation engine.

use std::fmt;

/// Errors produced by the relational table engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A column index was out of bounds.
    ColumnIndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of columns available.
        width: usize,
    },
    /// A row index was out of bounds.
    RowIndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows available.
        height: usize,
    },
    /// A value of one type was used where another type was expected.
    TypeMismatch {
        /// The type the operation required.
        expected: String,
        /// The type actually supplied.
        found: String,
    },
    /// Two schemas that must be identical differ.
    SchemaMismatch(String),
    /// Columns of a table have inconsistent lengths.
    LengthMismatch {
        /// Length required for consistency.
        expected: usize,
        /// Length actually found.
        found: usize,
    },
    /// A key column contains duplicate values.
    DuplicateKey(String),
    /// A key present in one snapshot is missing from the other.
    KeyNotFound(String),
    /// CSV input could not be parsed.
    CsvParse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An I/O error occurred (message only: io::Error is not Clone).
    Io(String),
    /// An expression could not be evaluated.
    Eval(String),
    /// An operation was attempted on an empty table where it is undefined.
    EmptyTable(String),
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownAttribute(name) => {
                write!(f, "unknown attribute: {name:?}")
            }
            RelationError::ColumnIndexOutOfBounds { index, width } => {
                write!(f, "column index {index} out of bounds for width {width}")
            }
            RelationError::RowIndexOutOfBounds { index, height } => {
                write!(f, "row index {index} out of bounds for height {height}")
            }
            RelationError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelationError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelationError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            RelationError::DuplicateKey(key) => write!(f, "duplicate key value: {key}"),
            RelationError::KeyNotFound(key) => write!(f, "key not found: {key}"),
            RelationError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            RelationError::Io(msg) => write!(f, "I/O error: {msg}"),
            RelationError::Eval(msg) => write!(f, "expression evaluation error: {msg}"),
            RelationError::EmptyTable(op) => {
                write!(f, "operation {op:?} is undefined on an empty table")
            }
            RelationError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<std::io::Error> for RelationError {
    fn from(err: std::io::Error) -> Self {
        RelationError::Io(err.to_string())
    }
}

/// Convenience result alias for the relation crate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let err = RelationError::UnknownAttribute("bonus".to_string());
        assert_eq!(err.to_string(), "unknown attribute: \"bonus\"");
    }

    #[test]
    fn display_type_mismatch() {
        let err = RelationError::TypeMismatch {
            expected: "Float64".to_string(),
            found: "Utf8".to_string(),
        };
        assert!(err.to_string().contains("expected Float64"));
        assert!(err.to_string().contains("found Utf8"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: RelationError = io.into();
        assert!(matches!(err, RelationError::Io(_)));
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RelationError::EmptyTable("mean".into()));
    }
}
