//! Scalar arithmetic expressions over table rows.
//!
//! Expressions describe how a new value is computed from a row's current
//! values — exactly the shape of a ChARLES *transformation* right-hand side
//! (`1.05 × bonus + 1000`) and of UPDATE statements' `SET` clauses.

use crate::error::{RelationError, Result};
use crate::table::Table;
use std::fmt;

/// A scalar numeric expression evaluated per row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a (numeric) attribute's current value.
    Col(String),
    /// Floating-point literal.
    Lit(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (dividing by zero yields an error at evaluation).
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Attribute reference.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: f64) -> Self {
        Expr::Lit(v)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Self {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Self {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Self {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Self {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        Expr::Neg(Box::new(self))
    }

    /// Convenience: the affine expression `scale × attr + offset`, the
    /// canonical single-variable ChARLES transformation.
    pub fn affine(attr: impl Into<String>, scale: f64, offset: f64) -> Self {
        Expr::lit(scale).mul(Expr::col(attr)).add(Expr::lit(offset))
    }

    /// Evaluate on one row. Non-numeric or null referenced cells error.
    pub fn eval(&self, table: &Table, row: usize) -> Result<f64> {
        match self {
            Expr::Col(name) => {
                let v = table.column_by_name(name)?.get(row);
                v.as_f64().ok_or_else(|| {
                    RelationError::Eval(format!(
                        "attribute {name:?} at row {row} is not numeric (value: {v})"
                    ))
                })
            }
            Expr::Lit(v) => Ok(*v),
            Expr::Add(a, b) => Ok(a.eval(table, row)? + b.eval(table, row)?),
            Expr::Sub(a, b) => Ok(a.eval(table, row)? - b.eval(table, row)?),
            Expr::Mul(a, b) => Ok(a.eval(table, row)? * b.eval(table, row)?),
            Expr::Div(a, b) => {
                let denom = b.eval(table, row)?;
                if denom == 0.0 {
                    return Err(RelationError::Eval(format!(
                        "division by zero at row {row} in {self}"
                    )));
                }
                Ok(a.eval(table, row)? / denom)
            }
            Expr::Neg(inner) => Ok(-inner.eval(table, row)?),
        }
    }

    /// Evaluate over every row.
    pub fn eval_all(&self, table: &Table) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(table.height());
        for row in table.row_ids() {
            out.push(self.eval(table, row)?);
        }
        Ok(out)
    }

    /// Attributes referenced (sorted, deduplicated).
    pub fn attributes(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        self.collect_attrs(&mut set);
        set.into_iter().collect()
    }

    fn collect_attrs(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Expr::Neg(inner) => inner.collect_attrs(out),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Col(_) | Expr::Lit(_) => 3,
            Expr::Neg(_) => 2,
            Expr::Mul(_, _) | Expr::Div(_, _) => 1,
            Expr::Add(_, _) | Expr::Sub(_, _) => 0,
        }
    }

    fn fmt_child(&self, child: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < self.precedence() {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => f.write_str(name),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" + ")?;
                self.fmt_child(b, f)
            }
            Expr::Sub(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" - ")?;
                // Subtraction is left-associative; parenthesize right child
                // at equal precedence.
                if b.precedence() <= self.precedence() {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Mul(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" × ")?;
                self.fmt_child(b, f)
            }
            Expr::Div(a, b) => {
                self.fmt_child(a, f)?;
                f.write_str(" / ")?;
                if b.precedence() <= self.precedence() {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Neg(inner) => {
                f.write_str("-")?;
                self.fmt_child(inner, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn t() -> Table {
        TableBuilder::new("t")
            .float_col("bonus", &[23_000.0, 25_000.0])
            .float_col("salary", &[230_000.0, 250_000.0])
            .str_col("edu", &["PhD", "MS"])
            .build()
            .unwrap()
    }

    #[test]
    fn affine_matches_paper_rule_r1() {
        // R1: new_bonus = 1.05 × old_bonus + 1000
        let e = Expr::affine("bonus", 1.05, 1000.0);
        assert_eq!(e.eval(&t(), 0).unwrap(), 1.05 * 23_000.0 + 1000.0);
        assert_eq!(e.to_string(), "1.05 × bonus + 1000");
    }

    #[test]
    fn arithmetic() {
        let table = t();
        let e = Expr::col("salary").sub(Expr::col("bonus"));
        assert_eq!(e.eval(&table, 0).unwrap(), 207_000.0);
        let e = Expr::col("salary").div(Expr::lit(10.0));
        assert_eq!(e.eval(&table, 1).unwrap(), 25_000.0);
        let e = Expr::col("bonus").neg();
        assert_eq!(e.eval(&table, 0).unwrap(), -23_000.0);
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::col("salary").div(Expr::lit(0.0));
        assert!(matches!(
            e.eval(&t(), 0).unwrap_err(),
            RelationError::Eval(_)
        ));
    }

    #[test]
    fn non_numeric_reference_errors() {
        let e = Expr::col("edu").add(Expr::lit(1.0));
        assert!(e.eval(&t(), 0).is_err());
    }

    #[test]
    fn eval_all_rows() {
        let e = Expr::affine("bonus", 1.0, 500.0);
        assert_eq!(e.eval_all(&t()).unwrap(), vec![23_500.0, 25_500.0]);
    }

    #[test]
    fn attributes_collected_sorted() {
        let e = Expr::col("salary")
            .mul(Expr::lit(0.1))
            .add(Expr::col("bonus"));
        assert_eq!(
            e.attributes(),
            vec!["bonus".to_string(), "salary".to_string()]
        );
    }

    #[test]
    fn display_parenthesization() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::lit(2.0));
        assert_eq!(e.to_string(), "(a + b) × 2");
        let e = Expr::col("a").sub(Expr::col("b").sub(Expr::col("c")));
        assert_eq!(e.to_string(), "a - (b - c)");
        let e = Expr::col("a").div(Expr::col("b").mul(Expr::col("c")));
        assert_eq!(e.to_string(), "a / (b × c)");
    }
}
