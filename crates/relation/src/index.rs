//! Key indexes: O(1) lookup from entity key to row id.

use crate::error::{RelationError, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index over a table's key column.
///
/// ChARLES assumes the two snapshots contain the same real-world entities;
/// the index is what lets us pair up each entity's source row with its
/// target row in O(n) total.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    attr: String,
    map: HashMap<Value, usize>,
}

impl KeyIndex {
    /// Build an index over `attr`; fails on duplicate or null keys.
    pub fn build(table: &Table, attr: &str) -> Result<Self> {
        let col = table.column_by_name(attr)?;
        let mut map = HashMap::with_capacity(col.len());
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                return Err(RelationError::DuplicateKey(format!(
                    "null key at row {i} in {attr:?}"
                )));
            }
            if map.insert(v.clone(), i).is_some() {
                return Err(RelationError::DuplicateKey(v.to_string()));
            }
        }
        Ok(KeyIndex {
            attr: attr.to_string(),
            map,
        })
    }

    /// Build over the table's declared key column.
    pub fn build_on_key(table: &Table) -> Result<Self> {
        let attr = table
            .key_name()
            .ok_or_else(|| RelationError::InvalidArgument("table has no key column".into()))?
            .to_string();
        KeyIndex::build(table, &attr)
    }

    /// The indexed attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Row id for a key value.
    pub fn get(&self, key: &Value) -> Option<usize> {
        self.map.get(key).copied()
    }

    /// Row id for a key value, or an error.
    pub fn require(&self, key: &Value) -> Result<usize> {
        self.get(key)
            .ok_or_else(|| RelationError::KeyNotFound(key.to_string()))
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys present in `self` but not in `other` (sorted for determinism).
    pub fn keys_missing_from(&self, other: &KeyIndex) -> Vec<Value> {
        // lint:allow(ordered-iteration: hash order is erased by the sort on the line below)
        let mut missing: Vec<Value> = self
            .map
            .keys()
            .filter(|k| !other.map.contains_key(*k))
            .cloned()
            .collect();
        missing.sort();
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn t(keys: &[&str]) -> Table {
        TableBuilder::new("t").str_col("k", keys).build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let table = t(&["a", "b", "c"]);
        let idx = KeyIndex::build(&table, "k").unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(&Value::str("b")), Some(1));
        assert_eq!(idx.get(&Value::str("z")), None);
        assert!(idx.require(&Value::str("z")).is_err());
        assert_eq!(idx.attr(), "k");
    }

    #[test]
    fn duplicates_rejected() {
        let table = t(&["a", "a"]);
        assert!(matches!(
            KeyIndex::build(&table, "k").unwrap_err(),
            RelationError::DuplicateKey(_)
        ));
    }

    #[test]
    fn build_on_declared_key() {
        let table = t(&["x", "y"]).with_key("k").unwrap();
        let idx = KeyIndex::build_on_key(&table).unwrap();
        assert_eq!(idx.get(&Value::str("y")), Some(1));
        let nokey = t(&["x"]);
        assert!(KeyIndex::build_on_key(&nokey).is_err());
    }

    #[test]
    fn missing_keys_sorted() {
        let a = KeyIndex::build(&t(&["a", "b", "d"]), "k").unwrap();
        let b = KeyIndex::build(&t(&["b"]), "k").unwrap();
        assert_eq!(
            a.keys_missing_from(&b),
            vec![Value::str("a"), Value::str("d")]
        );
        assert!(b.keys_missing_from(&a).is_empty());
    }
}
