//! # charles-relation
//!
//! The relational substrate for [ChARLES](https://arxiv.org/abs/2409.18386):
//! a compact, dependency-free, in-memory columnar table engine.
//!
//! ChARLES compares two *snapshots* of an evolving table. This crate provides
//! everything the recovery engine needs from a database layer:
//!
//! - typed columnar storage with dictionary-encoded strings ([`Column`]),
//! - per-block compressed column encodings with zone-map statistics for
//!   sealed snapshots ([`CompressedColumn`]),
//! - schemas and tables ([`Schema`], [`Table`], [`TableBuilder`]),
//! - a predicate language for conditions and `WHERE` clauses ([`Predicate`]),
//! - scalar arithmetic expressions for transformations ([`Expr`]),
//! - an UPDATE-statement engine used to *evolve* snapshots
//!   ([`apply_updates`]),
//! - key-based snapshot alignment ([`SnapshotPair`]), and
//! - CSV import/export with type inference ([`read_csv`], [`write_csv`]).
//!
//! ## Example
//!
//! ```
//! use charles_relation::{TableBuilder, SnapshotPair, Predicate, Expr,
//!                        UpdateStatement, apply_updates, ApplyMode};
//!
//! let v2016 = TableBuilder::new("salaries-2016")
//!     .str_col("name", &["Anne", "Bob"])
//!     .str_col("edu", &["PhD", "MS"])
//!     .float_col("bonus", &[23_000.0, 16_000.0])
//!     .key("name")
//!     .build()
//!     .unwrap();
//!
//! // Evolve the snapshot with a latent policy: PhDs get 5% + $1000.
//! let policy = [UpdateStatement::new(
//!     "bonus",
//!     Expr::affine("bonus", 1.05, 1000.0),
//!     Predicate::eq("edu", "PhD"),
//! )];
//! let v2017 = apply_updates(&v2016, &policy, ApplyMode::FirstMatch)
//!     .unwrap()
//!     .table;
//!
//! let pair = SnapshotPair::align(v2016, v2017).unwrap();
//! assert_eq!(pair.target_numeric_aligned("bonus").unwrap()[0], 25_150.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod align;
pub mod builder;
pub mod column;
pub mod compress;
pub mod csv;
pub mod error;
pub mod expr;
pub mod index;
pub mod lz;
pub mod predicate;
pub mod schema;
pub mod table;
pub mod update;
pub mod value;
pub mod view;

pub use align::SnapshotPair;
pub use builder::{RowBuilder, TableBuilder};
pub use column::{Column, StrDict};
pub use compress::{CompressedColumn, FloatZone, IntZone, GRAM_BLOCK_ROWS};
pub use csv::{read_csv, read_csv_path, write_csv, write_csv_path};
pub use error::{RelationError, Result};
pub use expr::Expr;
pub use index::KeyIndex;
pub use predicate::{CmpOp, Predicate};
pub use schema::{AttrId, AttrRef, Field, Schema};
pub use table::Table;
pub use update::{apply_updates, ApplyMode, UpdateOutcome, UpdateStatement};
pub use value::{DataType, Value};
pub use view::{CodeGroups, CodesView, ColumnView, NumericView, RowRange};
