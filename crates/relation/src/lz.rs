//! Dependency-free byte compression for sealed column payloads.
//!
//! A small LZSS-style codec used by the compressed column plane
//! ([`crate::compress`]) to shrink sealed (immutable) dictionary payloads.
//! The container bakes in no compression crates, so this is a minimal,
//! self-contained implementation tuned for the repetitive text that
//! dictionary pools hold (names, department labels, grades):
//!
//! - greedy matcher over a 64 KiB window, 4-byte minimum match;
//! - single-slot hash table (no chains) — compression speed over ratio;
//! - token format: a control byte carries 8 flags (LSB first), `0` =
//!   literal byte follows, `1` = match follows as `distance: u16 LE`
//!   (1-based back-reference) plus `length − 4: u8` (match lengths
//!   4..=259).
//!
//! Decompression is strict: malformed streams produce an error, never a
//! panic — sealed payloads are decoded on serving paths.

use crate::error::{RelationError, Result};

/// Minimum match length worth encoding (a match token costs 3 bytes plus
/// one flag bit; literals cost 1 byte plus one flag bit).
const MIN_MATCH: usize = 4;
/// Maximum match length one token can carry.
const MAX_MATCH: usize = MIN_MATCH + u8::MAX as usize;
/// Back-reference window (distances are 1-based `u16`).
const WINDOW: usize = u16::MAX as usize;
/// log2 of the hash-table size.
const HASH_BITS: u32 = 16;

/// Hash the 4 bytes at `pos` into a table index.
fn hash4(input: &[u8], pos: usize) -> usize {
    let quad = u32::from_le_bytes([
        input[pos],
        input[pos + 1],
        input[pos + 2],
        input[pos + 3],
    ]);
    (quad.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`. The output carries no length header — callers store
/// the uncompressed length alongside (see [`decompress`]).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Last position seen for each 4-byte-prefix hash; a plain vector, so
    // probing is deterministic and allocation-free per step.
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut flags_at = usize::MAX;
    let mut flag_bit = 8u32;
    let mut push_token = |out: &mut Vec<u8>, is_match: bool, bytes: &[u8]| {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flags_at] |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(bytes);
    };
    while pos < input.len() {
        let mut matched = 0usize;
        let mut distance = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(input, pos);
            let candidate = table[h];
            table[h] = pos;
            if candidate != usize::MAX && pos - candidate <= WINDOW {
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    matched = len;
                    distance = pos - candidate;
                }
            }
        }
        if matched >= MIN_MATCH {
            let d = distance as u16;
            let l = (matched - MIN_MATCH) as u8;
            push_token(&mut out, true, &[d.to_le_bytes()[0], d.to_le_bytes()[1], l]);
            // Seed the table inside the match so later data can reference
            // its interior; sampling every position would be quadratic-ish
            // for long runs, every 4th is plenty for dictionary text.
            let mut p = pos + 1;
            let end = (pos + matched).min(input.len().saturating_sub(MIN_MATCH));
            while p < end {
                table[hash4(input, p)] = p;
                p += 4;
            }
            pos += matched;
        } else {
            push_token(&mut out, false, &input[pos..pos + 1]);
            pos += 1;
        }
    }
    out
}

/// Decompress a [`compress`] stream into exactly `raw_len` bytes.
pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let malformed = || RelationError::Eval("malformed compressed payload".to_string());
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while out.len() < raw_len {
        let flags = *input.get(pos).ok_or_else(malformed)?;
        pos += 1;
        for bit in 0..8 {
            if out.len() >= raw_len {
                break;
            }
            if flags & (1 << bit) == 0 {
                out.push(*input.get(pos).ok_or_else(malformed)?);
                pos += 1;
            } else {
                let token = input.get(pos..pos + 3).ok_or_else(malformed)?;
                pos += 3;
                let distance = u16::from_le_bytes([token[0], token[1]]) as usize;
                let len = token[2] as usize + MIN_MATCH;
                if distance == 0 || distance > out.len() || out.len() + len > raw_len {
                    return Err(malformed());
                }
                // Matches may overlap their own output (run encoding), so
                // copy byte-by-byte from the back-reference.
                let start = out.len() - distance;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    // A well-formed stream is consumed exactly: trailing bytes mean the
    // declared length and the stream disagree.
    if out.len() != raw_len || pos != input.len() {
        return Err(malformed());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).unwrap();
        assert_eq!(back.as_slice(), data);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 1000]);
        roundtrip("Anne Smith,Bob Smith,Anne Jones,Bob Jones,".repeat(50).as_bytes());
        let mixed: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        roundtrip(&mixed);
    }

    #[test]
    fn repetitive_text_actually_shrinks() {
        let data = "department of transportation;".repeat(200);
        let packed = compress(data.as_bytes());
        assert!(
            packed.len() * 4 < data.len(),
            "expected ≥ 4x on repetitive text, got {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn overlapping_match_runs_decode() {
        // "aaaa..." forces distance-1 matches that overlap their output.
        let data = vec![b'a'; 700];
        roundtrip(&data);
    }

    #[test]
    fn malformed_streams_error_not_panic() {
        assert!(decompress(&[], 5).is_err());
        // Flag says match but the token is truncated.
        assert!(decompress(&[0b0000_0001, 9], 9).is_err());
        // Match reaches behind the start of the output.
        assert!(decompress(&[0b0000_0010, b'x', 5, 0, 0], 9).is_err());
        // Declared length shorter than the stream produces.
        let packed = compress(b"abcdefgh");
        assert!(decompress(&packed, 4).is_err());
    }
}
