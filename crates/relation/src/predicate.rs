//! Row predicates: the boolean language used for conditions and UPDATE
//! `WHERE` clauses.
//!
//! A [`Predicate`] is a small boolean expression tree over attribute
//! comparisons. ChARLES's *condition* language (conjunctions of descriptors,
//! see `charles-core`) compiles into this representation for evaluation.

use crate::column::Column;
use crate::error::Result;
use crate::schema::AttrRef;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operator for atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering result.
    pub(crate) fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }
}

/// A boolean predicate over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (matches every row).
    True,
    /// Always false.
    False,
    /// `attr OP literal`; null attribute values never match.
    Cmp {
        /// Attribute handle (interned id when built by the engine; a bare
        /// name otherwise — both evaluate identically).
        attr: AttrRef,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `attr ∈ {values}`.
    InSet {
        /// Attribute handle.
        attr: AttrRef,
        /// The allowed values (deduplicated, ordered for determinism).
        values: BTreeSet<Value>,
    },
    /// `lo ≤ attr < hi` (half-open interval, the canonical numeric bin).
    Between {
        /// Attribute handle.
        attr: AttrRef,
        /// Inclusive lower bound.
        lo: Value,
        /// Exclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: impl Into<AttrRef>, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `attr OP value`.
    pub fn cmp(attr: impl Into<AttrRef>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// `attr ∈ set`.
    pub fn in_set<I, V>(attr: impl Into<AttrRef>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Predicate::InSet {
            attr: attr.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// `lo ≤ attr < hi`.
    pub fn between(attr: impl Into<AttrRef>, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between {
            attr: attr.into(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Conjunction of two predicates, flattening nested `And`s.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Disjunction of two predicates, flattening nested `Or`s.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (Predicate::Or(mut a), Predicate::Or(b)) => {
                a.extend(b);
                Predicate::Or(a)
            }
            (Predicate::Or(mut a), p) => {
                a.push(p);
                Predicate::Or(a)
            }
            (p, Predicate::Or(mut b)) => {
                b.insert(0, p);
                Predicate::Or(b)
            }
            (a, b) => Predicate::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            p => Predicate::Not(Box::new(p)),
        }
    }

    /// Resolve an attribute handle to a column: interned ids index
    /// directly (verified against the field name, so a handle resolved on
    /// an identically-shaped schema is accepted); otherwise one name
    /// lookup.
    fn column_of<'t>(table: &'t Table, attr: &AttrRef) -> Result<&'t Column> {
        if let Some(id) = attr.id() {
            if let Ok(field) = table.schema().field(id.index()) {
                if field.name() == attr.name() {
                    return Ok(table.column_by_id(id));
                }
            }
        }
        table.column_by_name(attr.name())
    }

    /// Evaluate against one row. Comparisons on null cells are false
    /// (three-valued logic collapsed, as in SQL `WHERE`).
    pub fn eval(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Cmp { attr, op, value } => {
                let cell = Self::column_of(table, attr)?.get(row);
                match op {
                    CmpOp::Eq => cell.sem_eq(value),
                    CmpOp::Ne => !cell.is_null() && !cell.sem_eq(value),
                    _ => cell.sem_cmp(value).is_some_and(|ord| op.test(ord)),
                }
            }
            Predicate::InSet { attr, values } => {
                let cell = Self::column_of(table, attr)?.get(row);
                !cell.is_null() && values.iter().any(|v| cell.sem_eq(v))
            }
            Predicate::Between { attr, lo, hi } => {
                let cell = Self::column_of(table, attr)?.get(row);
                cell.sem_cmp(lo).is_some_and(|o| o != Ordering::Less)
                    && cell.sem_cmp(hi).is_some_and(|o| o == Ordering::Less)
            }
            Predicate::And(parts) => {
                for p in parts {
                    if !p.eval(table, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(parts) => {
                for p in parts {
                    if p.eval(table, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(inner) => !inner.eval(table, row)?,
        })
    }

    /// Evaluate against every row, producing a selection mask.
    ///
    /// Hot comparison shapes (string equality against a dictionary column,
    /// numeric comparisons, numeric ranges) are evaluated columnar-wise:
    /// string literals are resolved to dictionary codes **once** and rows
    /// compare integer codes or raw `f64`s — no per-row [`Value`]
    /// materialization. Everything else falls back to row-wise
    /// [`Predicate::eval`] with identical semantics.
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>> {
        let n = table.height();
        match self {
            Predicate::True => Ok(vec![true; n]),
            Predicate::False => Ok(vec![false; n]),
            Predicate::And(parts) => {
                let mut mask = vec![true; n];
                for p in parts {
                    let part = p.eval_mask(table)?;
                    for (m, v) in mask.iter_mut().zip(part) {
                        *m = *m && v;
                    }
                }
                Ok(mask)
            }
            Predicate::Or(parts) => {
                let mut mask = vec![false; n];
                for p in parts {
                    let part = p.eval_mask(table)?;
                    for (m, v) in mask.iter_mut().zip(part) {
                        *m = *m || v;
                    }
                }
                Ok(mask)
            }
            Predicate::Not(inner) => {
                let mut mask = inner.eval_mask(table)?;
                for m in &mut mask {
                    *m = !*m;
                }
                Ok(mask)
            }
            Predicate::Cmp { attr, op, value } => {
                let col = Self::column_of(table, attr)?;
                match Self::cmp_mask_columnar(col, *op, value) {
                    Some(mask) => Ok(mask),
                    None => self.eval_mask_rowwise(table),
                }
            }
            Predicate::Between { attr, lo, hi } => {
                let col = Self::column_of(table, attr)?;
                match (col, lo.as_f64(), hi.as_f64()) {
                    (Column::Int64 { .. } | Column::Float64 { .. }, Some(lo), Some(hi)) => {
                        Ok(Self::numeric_mask(col, |v| {
                            // Mirrors sem_cmp: f64 total order on both ends.
                            v.total_cmp(&lo) != Ordering::Less && v.total_cmp(&hi) == Ordering::Less
                        }))
                    }
                    // Compressed numeric plane: zone maps answer whole
                    // blocks; decoded blocks apply the identical total-order
                    // test, so the cleared mask matches the raw path
                    // bit-for-bit.
                    (Column::Compressed { data, .. }, Some(lo), Some(hi))
                        if data.is_numeric() =>
                    {
                        match data.between_mask(lo, hi) {
                            Some(mut mask) => {
                                Self::clear_nulls(col, &mut mask);
                                Ok(mask)
                            }
                            None => self.eval_mask_rowwise(table),
                        }
                    }
                    _ => self.eval_mask_rowwise(table),
                }
            }
            Predicate::InSet { attr, values } => {
                let col = Self::column_of(table, attr)?;
                if let Column::Utf8 { dict, codes, .. } = col {
                    if values.iter().all(|v| matches!(v, Value::Str(_))) {
                        // Resolve the whole set to codes once; membership is
                        // then an integer bitmap probe per row.
                        let mut member = vec![false; dict.len()];
                        for v in values {
                            if let Some(code) = v.as_str().and_then(|s| dict.code_of(s)) {
                                member[code as usize] = true;
                            }
                        }
                        // Null rows carry an un-interned sentinel code
                        // (possibly out of dictionary range): probe with
                        // `get`, and `clear_nulls` removes them anyway.
                        let mut mask: Vec<bool> = codes
                            .iter()
                            .map(|&c| member.get(c as usize).copied().unwrap_or(false))
                            .collect();
                        Self::clear_nulls(col, &mut mask);
                        return Ok(mask);
                    }
                }
                // Compressed string column: same membership-bitmap probe
                // over the decoded codes and the sealed pool.
                if let Column::Compressed { data, .. } = col {
                    if values.iter().all(|v| matches!(v, Value::Str(_))) {
                        if let (Some(Ok(dict)), Some(codes)) =
                            (data.dict(), data.decode_codes())
                        {
                            let mut member = vec![false; dict.len()];
                            for v in values {
                                if let Some(code) = v.as_str().and_then(|s| dict.code_of(s)) {
                                    member[code as usize] = true;
                                }
                            }
                            let mut mask: Vec<bool> = codes
                                .iter()
                                .map(|&c| member.get(c as usize).copied().unwrap_or(false))
                                .collect();
                            Self::clear_nulls(col, &mut mask);
                            return Ok(mask);
                        }
                    }
                }
                self.eval_mask_rowwise(table)
            }
        }
    }

    /// Row-wise reference evaluation (the semantics the columnar path must
    /// reproduce exactly).
    fn eval_mask_rowwise(&self, table: &Table) -> Result<Vec<bool>> {
        let mut mask = Vec::with_capacity(table.height());
        for row in table.row_ids() {
            mask.push(self.eval(table, row)?);
        }
        Ok(mask)
    }

    /// Null rows never match; clear them in one pass.
    fn clear_nulls(col: &Column, mask: &mut [bool]) {
        if let Some(validity) = col.validity_mask() {
            for (m, &valid) in mask.iter_mut().zip(validity.iter()) {
                *m = *m && valid;
            }
        }
    }

    /// Columnar mask for numeric columns under an `f64` predicate,
    /// with nulls cleared.
    fn numeric_mask(col: &Column, pred: impl Fn(f64) -> bool) -> Vec<bool> {
        let mut mask: Vec<bool> = match col {
            Column::Int64 { values, .. } => values.iter().map(|&v| pred(v as f64)).collect(),
            Column::Float64 { values, .. } => values.iter().map(|&v| pred(v)).collect(),
            // lint:allow(no-panic-in-request-path: callers dispatch here only after dtype().is_numeric() — a non-numeric column is a dispatch bug, not an input condition)
            _ => unreachable!("numeric_mask on non-numeric column"),
        };
        Self::clear_nulls(col, &mut mask);
        mask
    }

    /// Columnar evaluation of one comparison, when the (column, literal)
    /// shape supports it. `None` means "use the row-wise path".
    fn cmp_mask_columnar(col: &Column, op: CmpOp, value: &Value) -> Option<Vec<bool>> {
        match (col, value) {
            // String equality against a dictionary column: one dictionary
            // probe, then integer comparisons. This is the single hottest
            // predicate shape in the ChARLES search (`edu = PhD`).
            (Column::Utf8 { dict, codes, .. }, Value::Str(s))
                if matches!(op, CmpOp::Eq | CmpOp::Ne) =>
            {
                let target = dict.code_of(s);
                let mut mask: Vec<bool> = match (op, target) {
                    (CmpOp::Eq, Some(code)) => codes.iter().map(|&c| c == code).collect(),
                    (CmpOp::Eq, None) => vec![false; codes.len()],
                    (CmpOp::Ne, Some(code)) => codes.iter().map(|&c| c != code).collect(),
                    (CmpOp::Ne, None) => vec![true; codes.len()],
                    // lint:allow(no-panic-in-request-path: the outer match arm is guarded to CmpOp::Eq | CmpOp::Ne)
                    _ => unreachable!("guarded to Eq/Ne above"),
                };
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            // Exact integer equality keeps i64 precision (sem_eq semantics).
            (Column::Int64 { values, .. }, Value::Int(lit)) if op == CmpOp::Eq => {
                let mut mask: Vec<bool> = values.iter().map(|&v| v == *lit).collect();
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            (Column::Int64 { values, .. }, Value::Int(lit)) if op == CmpOp::Ne => {
                let mut mask: Vec<bool> = values.iter().map(|&v| v != *lit).collect();
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            // Numeric columns against numeric literals: raw f64 loops.
            (Column::Int64 { .. } | Column::Float64 { .. }, Value::Int(_) | Value::Float(_)) => {
                let lit = value.as_f64()?;
                Some(match op {
                    // sem_eq compares with `==`; ordering uses total_cmp.
                    CmpOp::Eq => Self::numeric_mask(col, |v| v == lit),
                    CmpOp::Ne => Self::numeric_mask(col, |v| v != lit),
                    _ => Self::numeric_mask(col, |v| op.test(v.total_cmp(&lit))),
                })
            }
            // Compressed string equality: resolve the literal against the
            // sealed pool once, then classify whole blocks by code zones.
            (Column::Compressed { data, .. }, Value::Str(s))
                if matches!(op, CmpOp::Eq | CmpOp::Ne) =>
            {
                let target = match data.dict() {
                    Some(Ok(dict)) => dict.code_of(s),
                    _ => return None,
                };
                let mut mask = data.code_eq_mask(op, target)?;
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            // Compressed exact integer equality keeps i64 precision
            // (sem_eq semantics), pruned by exact i64 zone bounds.
            (Column::Compressed { data, .. }, Value::Int(lit))
                if matches!(op, CmpOp::Eq | CmpOp::Ne) && data.dtype() == DataType::Int64 =>
            {
                let mut mask = data.int_eq_mask(op, *lit)?;
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            // Compressed numeric comparisons: zone maps answer whole
            // blocks, decoded blocks apply the identical IEEE/total-order
            // tests — the cleared mask equals the raw loop bit-for-bit.
            (Column::Compressed { data, .. }, Value::Int(_) | Value::Float(_))
                if data.is_numeric() =>
            {
                let lit = value.as_f64()?;
                let mut mask = data.numeric_cmp_mask(op, lit)?;
                Self::clear_nulls(col, &mut mask);
                Some(mask)
            }
            _ => None,
        }
    }

    /// Row ids matching the predicate (columnar where possible).
    pub fn matching_rows(&self, table: &Table) -> Result<Vec<usize>> {
        let mask = self.eval_mask(table)?;
        Ok(mask
            .into_iter()
            .enumerate()
            .filter_map(|(i, m)| m.then_some(i))
            .collect())
    }

    /// Number of atomic comparisons — the paper's "descriptor count", used
    /// by the interpretability score (fewer descriptors = simpler).
    pub fn descriptor_count(&self) -> usize {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Cmp { .. } | Predicate::Between { .. } => 1,
            // A value set reads as one descriptor per listed value beyond
            // the first ("Asian, European Females, or ..." in the paper).
            Predicate::InSet { values, .. } => values.len().max(1),
            Predicate::And(parts) | Predicate::Or(parts) => {
                parts.iter().map(Predicate::descriptor_count).sum()
            }
            Predicate::Not(inner) => inner.descriptor_count(),
        }
    }

    /// Attribute names referenced by this predicate (sorted, deduplicated).
    pub fn attributes(&self) -> Vec<String> {
        let mut attrs = BTreeSet::new();
        self.collect_attrs(&mut attrs);
        attrs.into_iter().collect()
    }

    fn collect_attrs(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Cmp { attr, .. }
            | Predicate::InSet { attr, .. }
            | Predicate::Between { attr, .. } => {
                out.insert(attr.name().to_string());
            }
            Predicate::And(parts) | Predicate::Or(parts) => {
                for p in parts {
                    p.collect_attrs(out);
                }
            }
            Predicate::Not(inner) => inner.collect_attrs(out),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("TRUE"),
            Predicate::False => f.write_str("FALSE"),
            Predicate::Cmp { attr, op, value } => {
                write!(f, "{attr} {} {value}", op.symbol())
            }
            Predicate::InSet { attr, values } => {
                write!(f, "{attr} ∈ {{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Predicate::Between { attr, lo, hi } => {
                write!(f, "{lo} ≤ {attr} < {hi}")
            }
            Predicate::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    if matches!(p, Predicate::Or(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Predicate::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∨ ")?;
                    }
                    if matches!(p, Predicate::And(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Predicate::Not(inner) => write!(f, "¬({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn emp() -> Table {
        TableBuilder::new("emp")
            .str_col("edu", &["PhD", "MS", "MS", "BS"])
            .int_col("exp", &[2, 5, 1, 2])
            .float_col("salary", &[230_000.0, 160_000.0, 130_000.0, 110_000.0])
            .build()
            .unwrap()
    }

    #[test]
    fn eq_predicate() {
        let t = emp();
        let p = Predicate::eq("edu", "MS");
        assert_eq!(p.eval_mask(&t).unwrap(), vec![false, true, true, false]);
        assert_eq!(p.matching_rows(&t).unwrap(), vec![1, 2]);
    }

    #[test]
    fn all_null_string_column_matches_nothing() {
        // An all-null Utf8 column has an *empty* dictionary while its rows
        // carry the un-interned sentinel code — the columnar set/equality
        // paths must treat every row as a non-match, not index the
        // dictionary.
        use crate::schema::Schema;
        use crate::value::DataType;
        let schema = Schema::from_pairs([("s", DataType::Utf8)]).unwrap();
        let col = crate::column::Column::from_values(DataType::Utf8, &[Value::Null, Value::Null])
            .unwrap();
        let t = Table::new(schema, vec![col]).unwrap();
        for p in [
            Predicate::in_set("s", ["a"]),
            Predicate::eq("s", "a"),
            Predicate::cmp("s", CmpOp::Ne, "a"),
        ] {
            assert_eq!(p.eval_mask(&t).unwrap(), vec![false, false], "{p}");
            assert!(p.matching_rows(&t).unwrap().is_empty(), "{p}");
        }
    }

    #[test]
    fn ordering_predicates() {
        let t = emp();
        assert_eq!(
            Predicate::cmp("exp", CmpOp::Lt, 3).eval_mask(&t).unwrap(),
            vec![true, false, true, true]
        );
        assert_eq!(
            Predicate::cmp("exp", CmpOp::Ge, 2).eval_mask(&t).unwrap(),
            vec![true, true, false, true]
        );
        // Cross-type numeric comparison: Int column vs Float literal.
        assert_eq!(
            Predicate::cmp("exp", CmpOp::Gt, 1.5).eval_mask(&t).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn set_and_range() {
        let t = emp();
        let p = Predicate::in_set("edu", ["PhD", "BS"]);
        assert_eq!(p.eval_mask(&t).unwrap(), vec![true, false, false, true]);
        let r = Predicate::between("salary", 120_000.0, 200_000.0);
        assert_eq!(r.eval_mask(&t).unwrap(), vec![false, true, true, false]);
    }

    #[test]
    fn boolean_combinators() {
        let t = emp();
        let ms_junior = Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Lt, 3));
        assert_eq!(
            ms_junior.eval_mask(&t).unwrap(),
            vec![false, false, true, false]
        );
        let phd_or_bs = Predicate::eq("edu", "PhD").or(Predicate::eq("edu", "BS"));
        assert_eq!(
            phd_or_bs.eval_mask(&t).unwrap(),
            vec![true, false, false, true]
        );
        let not_ms = Predicate::eq("edu", "MS").not();
        assert_eq!(
            not_ms.eval_mask(&t).unwrap(),
            vec![true, false, false, true]
        );
    }

    #[test]
    fn identity_simplifications() {
        let p = Predicate::True.and(Predicate::eq("edu", "MS"));
        assert_eq!(p, Predicate::eq("edu", "MS"));
        let q = Predicate::False.or(Predicate::eq("edu", "MS"));
        assert_eq!(q, Predicate::eq("edu", "MS"));
        assert_eq!(Predicate::True.not(), Predicate::False);
        assert_eq!(Predicate::eq("a", 1).not().not(), Predicate::eq("a", 1));
    }

    #[test]
    fn and_flattens() {
        let p = Predicate::eq("a", 1)
            .and(Predicate::eq("b", 2))
            .and(Predicate::eq("c", 3));
        match &p {
            Predicate::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn descriptor_counts() {
        assert_eq!(Predicate::True.descriptor_count(), 0);
        assert_eq!(Predicate::eq("a", 1).descriptor_count(), 1);
        assert_eq!(
            Predicate::in_set("a", [1, 2, 3]).descriptor_count(),
            3,
            "value sets count one descriptor per value"
        );
        let conj = Predicate::eq("a", 1).and(Predicate::between("b", 0, 10));
        assert_eq!(conj.descriptor_count(), 2);
    }

    #[test]
    fn attribute_collection() {
        let p = Predicate::eq("edu", "MS")
            .and(Predicate::cmp("exp", CmpOp::Lt, 3))
            .or(Predicate::eq("edu", "BS"));
        assert_eq!(p.attributes(), vec!["edu".to_string(), "exp".to_string()]);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = emp();
        assert!(Predicate::eq("nope", 1).eval(&t, 0).is_err());
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Predicate::eq("edu", "PhD").to_string(), "edu = PhD");
        assert_eq!(
            Predicate::eq("edu", "MS")
                .and(Predicate::cmp("exp", CmpOp::Lt, 3))
                .to_string(),
            "edu = MS ∧ exp < 3"
        );
        assert_eq!(Predicate::between("exp", 1, 3).to_string(), "1 ≤ exp < 3");
        assert_eq!(
            Predicate::in_set("edu", ["BS", "MS"]).to_string(),
            "edu ∈ {BS, MS}"
        );
    }

    #[test]
    fn null_never_matches() {
        use crate::value::{DataType, Value};
        let t = TableBuilder::new("t")
            .value_col("x", DataType::Float64, &[Value::Float(1.0), Value::Null])
            .unwrap()
            .build()
            .unwrap();
        for p in [
            Predicate::eq("x", 1.0),
            Predicate::cmp("x", CmpOp::Ne, 1.0),
            Predicate::cmp("x", CmpOp::Lt, 99.0),
            Predicate::in_set("x", [1.0]),
            Predicate::between("x", 0.0, 99.0),
        ] {
            assert!(!p.eval(&t, 1).unwrap(), "{p} matched null");
        }
    }
}
