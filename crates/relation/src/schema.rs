//! Table schemas: ordered, named, typed fields.

use crate::error::{RelationError, Result};
use crate::value::DataType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// An ordered collection of fields with O(1) name lookup.
///
/// Schemas are immutable once built and are shared between snapshots via
/// `Arc<Schema>`; ChARLES requires the source and target snapshot to have
/// *identical* schemas (same names, same types, same order).
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Eq for Schema {}

impl Schema {
    /// Build a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Arc<Self>> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            if by_name.insert(field.name.clone(), i).is_some() {
                return Err(RelationError::SchemaMismatch(format!(
                    "duplicate field name {:?}",
                    field.name
                )));
            }
        }
        Ok(Arc::new(Schema { fields, by_name }))
    }

    /// Build a schema from `(name, dtype)` pairs.
    pub fn from_pairs<'a, I>(pairs: I) -> Result<Arc<Self>>
    where
        I: IntoIterator<Item = (&'a str, DataType)>,
    {
        Schema::new(
            pairs
                .into_iter()
                .map(|(n, t)| Field::new(n, t))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at an index.
    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields
            .get(index)
            .ok_or(RelationError::ColumnIndexOutOfBounds {
                index,
                width: self.fields.len(),
            })
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Whether a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Data type of the named field.
    pub fn dtype_of(&self, name: &str) -> Result<DataType> {
        Ok(self.fields[self.index_of(name)?].dtype)
    }

    /// All field names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name()).collect()
    }

    /// Names of all numeric (Int64/Float64) fields.
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name())
            .collect()
    }

    /// Check that another schema is identical; describes the first point of
    /// divergence in the error message.
    pub fn ensure_same(&self, other: &Schema) -> Result<()> {
        if self.fields.len() != other.fields.len() {
            return Err(RelationError::SchemaMismatch(format!(
                "field counts differ: {} vs {}",
                self.fields.len(),
                other.fields.len()
            )));
        }
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if a != b {
                return Err(RelationError::SchemaMismatch(format!(
                    "field ({a}) vs ({b})"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Schema[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Arc<Schema> {
        Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Float64),
            ("c", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field(2).unwrap().name(), "c");
        assert_eq!(s.dtype_of("a").unwrap(), DataType::Int64);
        assert!(s.contains("c"));
        assert!(!s.contains("z"));
    }

    #[test]
    fn unknown_attribute_error() {
        let s = abc();
        assert_eq!(
            s.index_of("zzz").unwrap_err(),
            RelationError::UnknownAttribute("zzz".to_string())
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_pairs([("x", DataType::Int64), ("x", DataType::Utf8)]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch(_)));
    }

    #[test]
    fn numeric_names_filters() {
        let s = abc();
        assert_eq!(s.numeric_names(), vec!["a", "b"]);
    }

    #[test]
    fn ensure_same_detects_divergence() {
        let s1 = abc();
        let s2 = Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Int64),
            ("c", DataType::Utf8),
        ])
        .unwrap();
        assert!(s1.ensure_same(&s1).is_ok());
        let err = s1.ensure_same(&s2).unwrap_err();
        assert!(err.to_string().contains("b"));
        let s3 = Schema::from_pairs([("a", DataType::Int64)]).unwrap();
        assert!(s1.ensure_same(&s3).is_err());
    }

    #[test]
    fn display_roundtrip() {
        let s = abc();
        assert_eq!(s.to_string(), "Schema[a: Int64, b: Float64, c: Utf8]");
    }
}
