//! Table schemas: ordered, named, typed fields.

use crate::error::{RelationError, Result};
use crate::value::DataType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense interned attribute identifier: the attribute's index in its
/// [`Schema`]. ChARLES requires the source and target snapshot to share an
/// identical schema, so one id is valid against both tables of a pair and
/// everything derived from them — which lets the whole search hot path key
/// columns by `u32` instead of hashing `String`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(u32);

impl AttrId {
    /// Sentinel for handles created from a bare name, before resolution
    /// against a schema (see [`AttrRef::unresolved`]).
    pub(crate) const UNRESOLVED: AttrId = AttrId(u32::MAX);

    /// The attribute's field index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interned attribute handle: the id for integer-keyed lookups plus the
/// shared display name, so carriers (transformation terms, candidates)
/// render without a schema in hand.
///
/// Equality and ordering compare the *name* — a resolved and an unresolved
/// handle for the same attribute are interchangeable; the id is a lookup
/// accelerator, not identity.
#[derive(Debug, Clone)]
pub struct AttrRef {
    id: AttrId,
    name: Arc<str>,
}

impl AttrRef {
    /// A handle with a name but no schema binding. Engine-internal paths
    /// always resolve; this exists so tests and external callers can build
    /// transformations from bare strings.
    pub fn unresolved(name: impl AsRef<str>) -> Self {
        AttrRef {
            id: AttrId::UNRESOLVED,
            name: Arc::from(name.as_ref()),
        }
    }

    /// The interned id, if this handle was resolved against a schema.
    pub fn id(&self) -> Option<AttrId> {
        (self.id != AttrId::UNRESOLVED).then_some(self.id)
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared name.
    pub fn name_arc(&self) -> &Arc<str> {
        &self.name
    }
}

impl PartialEq for AttrRef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for AttrRef {}

impl PartialEq<str> for AttrRef {
    fn eq(&self, other: &str) -> bool {
        &*self.name == other
    }
}

impl PartialEq<&str> for AttrRef {
    fn eq(&self, other: &&str) -> bool {
        &*self.name == *other
    }
}

impl PartialEq<String> for AttrRef {
    fn eq(&self, other: &String) -> bool {
        &*self.name == other.as_str()
    }
}

impl PartialOrd for AttrRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl std::hash::Hash for AttrRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for AttrRef {
    fn from(name: &str) -> Self {
        AttrRef::unresolved(name)
    }
}

impl From<String> for AttrRef {
    fn from(name: String) -> Self {
        AttrRef::unresolved(name)
    }
}

/// A single named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: Arc<str>,
    dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Self {
        Field {
            name: Arc::from(name.as_ref()),
            dtype,
        }
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field name as a shared string.
    pub fn name_arc(&self) -> &Arc<str> {
        &self.name
    }

    /// The field's data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// An ordered collection of fields with O(1) name lookup.
///
/// Schemas are immutable once built and are shared between snapshots via
/// `Arc<Schema>`; ChARLES requires the source and target snapshot to have
/// *identical* schemas (same names, same types, same order).
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<Arc<str>, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Eq for Schema {}

impl Schema {
    /// Build a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Arc<Self>> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            if by_name.insert(field.name.clone(), i).is_some() {
                return Err(RelationError::SchemaMismatch(format!(
                    "duplicate field name {:?}",
                    field.name
                )));
            }
        }
        Ok(Arc::new(Schema { fields, by_name }))
    }

    /// Build a schema from `(name, dtype)` pairs.
    pub fn from_pairs<'a, I>(pairs: I) -> Result<Arc<Self>>
    where
        I: IntoIterator<Item = (&'a str, DataType)>,
    {
        Schema::new(
            pairs
                .into_iter()
                .map(|(n, t)| Field::new(n, t))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at an index.
    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields
            .get(index)
            .ok_or(RelationError::ColumnIndexOutOfBounds {
                index,
                width: self.fields.len(),
            })
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Interned id of a field by name. Ids are dense field indices, valid
    /// for every table sharing this schema.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        Ok(AttrId(self.index_of(name)? as u32))
    }

    /// Name of an interned attribute.
    ///
    /// # Panics
    /// Panics if `id` did not come from this schema (or an identical one).
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.fields[id.index()].name()
    }

    /// A resolved handle (id + shared name) for a field, by name.
    pub fn attr_ref(&self, name: &str) -> Result<AttrRef> {
        let idx = self.index_of(name)?;
        Ok(AttrRef {
            id: AttrId(idx as u32),
            name: self.fields[idx].name.clone(),
        })
    }

    /// A resolved handle for an interned id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this schema (or an identical one).
    pub fn attr_ref_by_id(&self, id: AttrId) -> AttrRef {
        AttrRef {
            id,
            name: self.fields[id.index()].name.clone(),
        }
    }

    /// Resolve a handle against this schema: reuses the handle's id when
    /// bound, otherwise interns its name.
    pub fn resolve(&self, attr: &AttrRef) -> Result<AttrId> {
        match attr.id() {
            Some(id) if id.index() < self.fields.len() => Ok(id),
            _ => self.attr_id(attr.name()),
        }
    }

    /// All attribute ids in field order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.fields.len() as u32).map(AttrId)
    }

    /// Whether a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Data type of the named field.
    pub fn dtype_of(&self, name: &str) -> Result<DataType> {
        Ok(self.fields[self.index_of(name)?].dtype)
    }

    /// All field names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name()).collect()
    }

    /// Names of all numeric (Int64/Float64) fields.
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name())
            .collect()
    }

    /// Check that another schema is identical; describes the first point of
    /// divergence in the error message.
    pub fn ensure_same(&self, other: &Schema) -> Result<()> {
        if self.fields.len() != other.fields.len() {
            return Err(RelationError::SchemaMismatch(format!(
                "field counts differ: {} vs {}",
                self.fields.len(),
                other.fields.len()
            )));
        }
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if a != b {
                return Err(RelationError::SchemaMismatch(format!(
                    "field ({a}) vs ({b})"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Schema[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Arc<Schema> {
        Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Float64),
            ("c", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field(2).unwrap().name(), "c");
        assert_eq!(s.dtype_of("a").unwrap(), DataType::Int64);
        assert!(s.contains("c"));
        assert!(!s.contains("z"));
    }

    #[test]
    fn unknown_attribute_error() {
        let s = abc();
        assert_eq!(
            s.index_of("zzz").unwrap_err(),
            RelationError::UnknownAttribute("zzz".to_string())
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_pairs([("x", DataType::Int64), ("x", DataType::Utf8)]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch(_)));
    }

    #[test]
    fn numeric_names_filters() {
        let s = abc();
        assert_eq!(s.numeric_names(), vec!["a", "b"]);
    }

    #[test]
    fn ensure_same_detects_divergence() {
        let s1 = abc();
        let s2 = Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Int64),
            ("c", DataType::Utf8),
        ])
        .unwrap();
        assert!(s1.ensure_same(&s1).is_ok());
        let err = s1.ensure_same(&s2).unwrap_err();
        assert!(err.to_string().contains("b"));
        let s3 = Schema::from_pairs([("a", DataType::Int64)]).unwrap();
        assert!(s1.ensure_same(&s3).is_err());
    }

    #[test]
    fn display_roundtrip() {
        let s = abc();
        assert_eq!(s.to_string(), "Schema[a: Int64, b: Float64, c: Utf8]");
    }

    #[test]
    fn attr_interning_roundtrip() {
        let s = abc();
        let id = s.attr_id("b").unwrap();
        assert_eq!(id.index(), 1);
        assert_eq!(s.attr_name(id), "b");
        assert!(s.attr_id("zzz").is_err());
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2].index(), 2);
    }

    #[test]
    fn attr_ref_resolution_and_equality() {
        let s = abc();
        let resolved = s.attr_ref("c").unwrap();
        assert_eq!(resolved.id(), Some(s.attr_id("c").unwrap()));
        assert_eq!(resolved.name(), "c");
        // The name Arc is shared with the schema, not re-allocated.
        assert!(Arc::ptr_eq(resolved.name_arc(), s.fields()[2].name_arc()));
        let unresolved = AttrRef::unresolved("c");
        assert_eq!(unresolved.id(), None);
        assert_eq!(resolved, unresolved);
        assert_eq!(resolved, "c");
        assert_eq!(s.resolve(&unresolved).unwrap(), s.attr_id("c").unwrap());
        assert_eq!(s.attr_ref_by_id(s.attr_id("a").unwrap()).name(), "a");
        assert!(s.resolve(&AttrRef::unresolved("missing")).is_err());
    }
}
