//! The [`Table`]: an immutable-schema, columnar, in-memory relation.

use crate::column::Column;
use crate::error::{RelationError, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// An in-memory relational table: a shared schema plus one [`Column`] per
/// field, all of equal length.
///
/// Tables are the unit ChARLES operates on: the *source* and *target*
/// snapshots are both `Table`s over the same schema. An optional key column
/// identifies the real-world entity each row represents, so the two
/// snapshots can be aligned row-by-row (see [`crate::align`]).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    key: Option<usize>,
    name: String,
}

impl Table {
    /// Construct a table from a schema and matching columns.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(RelationError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let mut height: Option<usize> = None;
        for (field, col) in schema.fields().iter().zip(columns.iter()) {
            if field.dtype() != col.dtype() {
                return Err(RelationError::TypeMismatch {
                    expected: field.dtype().name().to_string(),
                    found: format!("{} (column {:?})", col.dtype().name(), field.name()),
                });
            }
            match height {
                None => height = Some(col.len()),
                Some(h) if h != col.len() => {
                    return Err(RelationError::LengthMismatch {
                        expected: h,
                        found: col.len(),
                    })
                }
                _ => {}
            }
        }
        Ok(Table {
            schema,
            columns,
            key: None,
            name: String::new(),
        })
    }

    /// An empty table over a schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype()))
            .collect();
        Table {
            schema,
            columns,
            key: None,
            name: String::new(),
        }
    }

    /// Set a human-readable table name (used in display output).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declare the named column as the entity key. Verifies uniqueness and
    /// absence of nulls.
    pub fn with_key(mut self, attr: &str) -> Result<Self> {
        let idx = self.schema.index_of(attr)?;
        let col = &self.columns[idx];
        let mut seen = std::collections::HashSet::with_capacity(col.len());
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                return Err(RelationError::DuplicateKey(format!(
                    "null key at row {i} in column {attr:?}"
                )));
            }
            if !seen.insert(v.clone()) {
                return Err(RelationError::DuplicateKey(v.to_string()));
            }
        }
        self.key = Some(idx);
        Ok(self)
    }

    /// The table name ("" if unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Index of the key column, if declared.
    pub fn key_index(&self) -> Option<usize> {
        self.key
    }

    /// Name of the key column, if declared.
    pub fn key_name(&self) -> Option<&str> {
        self.key.map(|i| self.schema.fields()[i].name())
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Approximate resident bytes of all column storage (see
    /// [`Column::approx_bytes`]). `Arc`-aliased buffers are counted once
    /// per allocation within this table; to deduplicate across tables that
    /// share storage (aligned pairs, shards) thread one seen-set through
    /// [`Table::approx_bytes_dedup`].
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes_dedup(&mut std::collections::HashSet::new())
    }

    /// [`Table::approx_bytes`] deduplicated by allocation identity across
    /// every holder sharing `seen` (see [`Column::approx_bytes_dedup`]).
    pub fn approx_bytes_dedup(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        self.columns
            .iter()
            .map(|c| c.approx_bytes_dedup(seen))
            .sum()
    }

    /// A sealed copy of this table: every column compressed into per-block
    /// encodings with zone maps (see [`Column::compress`]). Decoding is
    /// bit-identical to the raw buffers, so everything computed from a
    /// sealed table — masks, views, statistics — matches the raw table
    /// exactly; name, schema, and key declaration carry over unchanged.
    pub fn sealed(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(Column::compress).collect(),
            key: self.key,
            name: self.name.clone(),
        }
    }

    /// Column by index.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(RelationError::ColumnIndexOutOfBounds {
                index,
                width: self.columns.len(),
            })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Column by interned id — a direct index, no string hashing.
    ///
    /// # Panics
    /// Panics if `id` did not come from this table's schema (or an
    /// identical one).
    pub fn column_by_id(&self, id: crate::schema::AttrId) -> &Column {
        &self.columns[id.index()]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable column by name. Mutating the key column invalidates indexes
    /// built before the mutation; re-check with [`Table::with_key`] if so.
    pub fn column_by_name_mut(&mut self, name: &str) -> Result<&mut Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&mut self.columns[idx])
    }

    /// Cell value at (`row`, attribute `name`).
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        let height = self.height();
        if row >= height {
            return Err(RelationError::RowIndexOutOfBounds { index: row, height });
        }
        Ok(self.column_by_name(name)?.get(row))
    }

    /// Entire row as values in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        let height = self.height();
        if row >= height {
            return Err(RelationError::RowIndexOutOfBounds { index: row, height });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Append a row of values in schema order.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.width() {
            return Err(RelationError::LengthMismatch {
                expected: self.width(),
                found: values.len(),
            });
        }
        // Validate all pushes up front so a failed row leaves the table
        // unchanged (columns must stay equal-length).
        for (col, v) in self.columns.iter().zip(values.iter()) {
            if !v.is_null() {
                let ok = matches!(
                    (col.dtype(), v),
                    (DataType::Int64, Value::Int(_))
                        | (DataType::Float64, Value::Float(_) | Value::Int(_))
                        | (DataType::Utf8, Value::Str(_))
                        | (DataType::Bool, Value::Bool(_))
                );
                if !ok {
                    return Err(RelationError::TypeMismatch {
                        expected: col.dtype().name().to_string(),
                        found: v.dtype().map_or("Null".into(), |t| t.name().to_string()),
                    });
                }
            }
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v).expect("validated above");
        }
        Ok(())
    }

    /// New table with only the rows at `indices` (in order). Key declaration
    /// is preserved when the subset keeps keys unique (always true for a
    /// subset of distinct indices).
    pub fn take(&self, indices: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            key: self.key,
            name: self.name.clone(),
        }
    }

    /// New table keeping rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Table> {
        if mask.len() != self.height() {
            return Err(RelationError::LengthMismatch {
                expected: self.height(),
                found: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.take(&indices))
    }

    /// Numeric column as a dense `f64` vector (regression input fast path).
    pub fn numeric(&self, name: &str) -> Result<Vec<f64>> {
        self.column_by_name(name)?.to_f64_vec(name)
    }

    /// Shared numeric view of a column by name (zero-copy for null-free
    /// `Float64` columns; see [`Column::numeric_view`]).
    pub fn numeric_view(&self, name: &str) -> Result<crate::view::NumericView> {
        self.column_by_name(name)?.numeric_view(name)
    }

    /// Shared numeric view of a column by interned id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this table's schema.
    pub fn numeric_view_by_id(
        &self,
        id: crate::schema::AttrId,
    ) -> Result<crate::view::NumericView> {
        self.column_by_id(id)
            .numeric_view(self.schema.attr_name(id))
    }

    /// Deep value equality (schema, heights, and every cell; names/keys are
    /// not compared).
    pub fn content_eq(&self, other: &Table) -> bool {
        if self.schema.ensure_same(&other.schema).is_err() || self.height() != other.height() {
            return false;
        }
        for (a, b) in self.columns.iter().zip(other.columns.iter()) {
            for i in 0..a.len() {
                let (va, vb) = (a.get(i), b.get(i));
                if va != vb {
                    return false;
                }
            }
        }
        true
    }

    /// Iterator over row indices (convenience for exhaustive scans).
    pub fn row_ids(&self) -> std::ops::Range<usize> {
        0..self.height()
    }
}

impl fmt::Display for Table {
    /// Pretty-prints up to 20 rows in a fixed-width grid.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 20;
        let names = self.schema.names();
        let shown = self.height().min(MAX_ROWS);
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        if !self.name.is_empty() {
            writeln!(f, "# {} ({} rows)", self.name, self.height())?;
        }
        for (n, w) in names.iter().zip(widths.iter()) {
            write!(f, "| {n:w$} ")?;
        }
        writeln!(f, "|")?;
        for w in &widths {
            write!(f, "|{:-<width$}", "", width = w + 2)?;
        }
        writeln!(f, "|")?;
        for row in &cells {
            for (cell, w) in row.iter().zip(widths.iter()) {
                write!(f, "| {cell:w$} ")?;
            }
            writeln!(f, "|")?;
        }
        if self.height() > MAX_ROWS {
            writeln!(f, "... {} more rows", self.height() - MAX_ROWS)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("exp", DataType::Int64),
            Field::new("salary", DataType::Float64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_strs(&["Anne", "Bob", "Amber"]),
                Column::from_i64(vec![2, 3, 5]),
                Column::from_f64(vec![230_000.0, 250_000.0, 160_000.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let t = sample();
        assert_eq!(t.height(), 3);
        assert_eq!(t.width(), 3);
        assert_eq!(t.value(1, "name").unwrap(), Value::str("Bob"));
        assert_eq!(t.value(2, "exp").unwrap(), Value::Int(5));
        assert_eq!(
            t.row(0).unwrap(),
            vec![Value::str("Anne"), Value::Int(2), Value::Float(230_000.0)]
        );
    }

    #[test]
    fn constructor_validates_shape() {
        let schema = Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Int64)]).unwrap();
        // wrong column count
        assert!(Table::new(schema.clone(), vec![Column::from_i64(vec![1])]).is_err());
        // mismatched lengths
        assert!(Table::new(
            schema.clone(),
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![1, 2])]
        )
        .is_err());
        // wrong dtype
        assert!(Table::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_f64(vec![1.0])]
        )
        .is_err());
    }

    #[test]
    fn key_declaration_checks_uniqueness() {
        let t = sample().with_key("name").unwrap();
        assert_eq!(t.key_name(), Some("name"));
        let schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap();
        let dup = Table::new(schema, vec![Column::from_i64(vec![1, 1])]).unwrap();
        assert!(matches!(
            dup.with_key("k").unwrap_err(),
            RelationError::DuplicateKey(_)
        ));
    }

    #[test]
    fn push_row_is_atomic_on_error() {
        let mut t = sample();
        let err = t.push_row(vec![
            Value::str("Zoe"),
            Value::str("bad"),
            Value::Float(1.0),
        ]);
        assert!(err.is_err());
        // No partial append happened.
        assert_eq!(t.height(), 3);
        t.push_row(vec![Value::str("Zoe"), Value::Int(1), Value::Int(90_000)])
            .unwrap();
        assert_eq!(t.height(), 4);
        assert_eq!(t.value(3, "salary").unwrap(), Value::Float(90_000.0));
    }

    #[test]
    fn filter_and_take() {
        let t = sample();
        let f = t.filter(&[true, false, true]).unwrap();
        assert_eq!(f.height(), 2);
        assert_eq!(f.value(1, "name").unwrap(), Value::str("Amber"));
        let tk = t.take(&[2, 0]);
        assert_eq!(tk.value(0, "name").unwrap(), Value::str("Amber"));
        assert_eq!(tk.value(1, "name").unwrap(), Value::str("Anne"));
        assert!(t.filter(&[true]).is_err());
    }

    #[test]
    fn numeric_extraction() {
        let t = sample();
        assert_eq!(t.numeric("exp").unwrap(), vec![2.0, 3.0, 5.0]);
        assert!(t.numeric("name").is_err());
    }

    #[test]
    fn content_equality() {
        let t = sample();
        assert!(t.content_eq(&t.clone()));
        let f = t.filter(&[true, true, false]).unwrap();
        assert!(!t.content_eq(&f));
    }

    #[test]
    fn display_renders_grid() {
        let out = sample().with_name("emp").to_string();
        assert!(out.contains("# emp (3 rows)"));
        assert!(out.contains("| Anne"));
        assert!(out.contains("| salary"));
    }
}
