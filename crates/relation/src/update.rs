//! A small UPDATE-statement engine.
//!
//! This is the substrate ChARLES's *synthetic* workloads are built on: a
//! ground-truth evolution policy is a list of `UPDATE t SET a = expr WHERE
//! cond` statements, and applying them to a source snapshot produces a
//! target snapshot whose latent semantics the recovery engine must infer.

use crate::error::{RelationError, Result};
use crate::expr::Expr;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::fmt;

/// One `SET attr = expr WHERE cond` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    /// Attribute being assigned.
    pub target: String,
    /// Right-hand side, evaluated against the row's *pre-update* values.
    pub expr: Expr,
    /// Row filter.
    pub condition: Predicate,
}

impl UpdateStatement {
    /// Create a statement.
    pub fn new(target: impl Into<String>, expr: Expr, condition: Predicate) -> Self {
        UpdateStatement {
            target: target.into(),
            expr,
            condition,
        }
    }
}

impl fmt::Display for UpdateStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SET {} = {} WHERE {}",
            self.target, self.expr, self.condition
        )
    }
}

/// How multiple statements compose when their conditions overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Each row is updated by the **first** statement whose condition
    /// matches (the semantics of a policy rule list like Example 1's
    /// R1/R2/R3, which are mutually exclusive by construction).
    #[default]
    FirstMatch,
    /// Every statement applies in order; later statements see the effects
    /// of earlier ones (sequential UPDATE semantics).
    Sequential,
}

/// Result of applying updates: the evolved table plus per-statement row
/// counts, useful both for tests and for ground-truth bookkeeping.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The evolved table.
    pub table: Table,
    /// For each statement, the row ids it updated.
    pub touched: Vec<Vec<usize>>,
}

impl UpdateOutcome {
    /// Total number of (row, statement) updates applied.
    pub fn total_updates(&self) -> usize {
        self.touched.iter().map(Vec::len).sum()
    }
}

/// Apply a list of UPDATE statements to a snapshot, producing a new one.
///
/// All right-hand sides read *pre-statement* values: in `FirstMatch` mode the
/// expressions see the original table; in `Sequential` mode each statement
/// sees the table as left by the previous statement (but not its own partial
/// writes, i.e. proper snapshot-consistent UPDATE semantics).
pub fn apply_updates(
    source: &Table,
    statements: &[UpdateStatement],
    mode: ApplyMode,
) -> Result<UpdateOutcome> {
    for stmt in statements {
        let dtype = source.schema().dtype_of(&stmt.target)?;
        if !dtype.is_numeric() {
            return Err(RelationError::InvalidArgument(format!(
                "update target {:?} must be numeric, found {}",
                stmt.target, dtype
            )));
        }
    }
    let mut current = source.clone();
    let mut touched = Vec::with_capacity(statements.len());
    let mut claimed = vec![false; source.height()];

    for stmt in statements {
        // Evaluate RHS + condition against the pre-statement state.
        let read_view = current.clone();
        let mut rows_updated = Vec::new();
        let is_int = read_view.schema().dtype_of(&stmt.target)? == DataType::Int64;
        for row in read_view.row_ids() {
            if mode == ApplyMode::FirstMatch && claimed[row] {
                continue;
            }
            if !stmt.condition.eval(&read_view, row)? {
                continue;
            }
            let new_val = stmt.expr.eval(&read_view, row)?;
            let value = if is_int {
                Value::Int(new_val.round() as i64)
            } else {
                Value::Float(new_val)
            };
            current.column_by_name_mut(&stmt.target)?.set(row, value)?;
            claimed[row] = true;
            rows_updated.push(row);
        }
        touched.push(rows_updated);
    }
    Ok(UpdateOutcome {
        table: current,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::predicate::CmpOp;

    fn emp() -> Table {
        TableBuilder::new("emp")
            .str_col("edu", &["PhD", "MS", "MS", "BS"])
            .int_col("exp", &[2, 5, 1, 2])
            .float_col("bonus", &[23_000.0, 16_000.0, 13_000.0, 11_000.0])
            .build()
            .unwrap()
    }

    #[test]
    fn first_match_is_exclusive() {
        // Two overlapping rules; first-match means row 1 (MS, exp 5) only
        // gets the first one.
        let stmts = vec![
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 2.0, 0.0),
                Predicate::cmp("exp", CmpOp::Ge, 5),
            ),
        ];
        let out = apply_updates(&emp(), &stmts, ApplyMode::FirstMatch).unwrap();
        assert_eq!(out.touched[0], vec![1, 2]);
        assert!(out.touched[1].is_empty());
        assert_eq!(
            out.table.value(1, "bonus").unwrap(),
            Value::Float(1.04 * 16_000.0 + 800.0)
        );
        assert_eq!(out.total_updates(), 2);
    }

    #[test]
    fn sequential_compounds() {
        let stmts = vec![
            UpdateStatement::new("bonus", Expr::affine("bonus", 2.0, 0.0), Predicate::True),
            UpdateStatement::new("bonus", Expr::affine("bonus", 1.0, 100.0), Predicate::True),
        ];
        let out = apply_updates(&emp(), &stmts, ApplyMode::Sequential).unwrap();
        // 23000 * 2 + 100
        assert_eq!(out.table.value(0, "bonus").unwrap(), Value::Float(46_100.0));
        assert_eq!(out.touched[0].len(), 4);
        assert_eq!(out.touched[1].len(), 4);
    }

    #[test]
    fn rhs_reads_pre_statement_values() {
        // SET bonus = bonus + exp should read original bonus for all rows,
        // even though earlier rows were already written.
        let stmts = vec![UpdateStatement::new(
            "bonus",
            Expr::col("bonus").add(Expr::col("exp")),
            Predicate::True,
        )];
        let out = apply_updates(&emp(), &stmts, ApplyMode::FirstMatch).unwrap();
        assert_eq!(out.table.value(0, "bonus").unwrap(), Value::Float(23_002.0));
        assert_eq!(out.table.value(3, "bonus").unwrap(), Value::Float(11_002.0));
    }

    #[test]
    fn int_target_rounds() {
        let stmts = vec![UpdateStatement::new(
            "exp",
            Expr::col("exp").add(Expr::lit(1.0)),
            Predicate::True,
        )];
        let out = apply_updates(&emp(), &stmts, ApplyMode::FirstMatch).unwrap();
        assert_eq!(out.table.value(0, "exp").unwrap(), Value::Int(3));
    }

    #[test]
    fn non_numeric_target_rejected() {
        let stmts = vec![UpdateStatement::new("edu", Expr::lit(1.0), Predicate::True)];
        assert!(apply_updates(&emp(), &stmts, ApplyMode::FirstMatch).is_err());
    }

    #[test]
    fn source_is_untouched() {
        let source = emp();
        let stmts = vec![UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 0.0, 0.0),
            Predicate::True,
        )];
        let _ = apply_updates(&source, &stmts, ApplyMode::FirstMatch).unwrap();
        assert_eq!(source.value(0, "bonus").unwrap(), Value::Float(23_000.0));
    }

    #[test]
    fn statement_display() {
        let stmt = UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 1.05, 1000.0),
            Predicate::eq("edu", "PhD"),
        );
        assert_eq!(
            stmt.to_string(),
            "SET bonus = 1.05 × bonus + 1000 WHERE edu = PhD"
        );
    }
}
