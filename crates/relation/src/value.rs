//! Scalar values and data types.
//!
//! A [`Value`] is the dynamically-typed unit the engine passes across cell
//! boundaries (predicates, expressions, diffs). Columns store data in typed,
//! contiguous vectors; `Value` only appears at the per-cell API surface.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string (dictionary-encoded in columns).
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether values of this type can be used in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single dynamically-typed cell value.
///
/// `Value` implements a total order (`Null` sorts first, floats compare via
/// [`f64::total_cmp`]) so it can key BTree structures and be sorted stably.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// String value from anything stringy.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of this value: ints and floats coerce to `f64`,
    /// booleans to 0.0/1.0, everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, without coercion from float.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Semantic equality used by diffing and predicates: `Int` and `Float`
    /// compare numerically (`Int(2) == Float(2.0)`), `Null != Null`
    /// (SQL-style three-valued logic collapsed to false).
    pub fn sem_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// Semantic comparison for ordering predicates; `None` when the values
    /// are incomparable (mixed non-numeric types or nulls).
    pub fn sem_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                Some(a.total_cmp(&b))
            }
        }
    }

    /// A canonical, order-preserving key for hashing/sorting mixed values.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that are numerically equal must hash equally
            // because `Eq` treats them as equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("∅"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int64));
        assert_eq!(Value::Float(1.5).dtype(), Some(DataType::Float64));
        assert_eq!(Value::str("x").dtype(), Some(DataType::Utf8));
        assert_eq!(Value::Bool(true).dtype(), Some(DataType::Bool));
        assert_eq!(Value::Null.dtype(), None);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn sem_eq_cross_type_numeric() {
        assert!(Value::Int(2).sem_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).sem_eq(&Value::Float(2.5)));
        assert!(!Value::Null.sem_eq(&Value::Null), "null never equals null");
    }

    #[test]
    fn sem_cmp_orders_numerics_and_strings() {
        assert_eq!(
            Value::Int(1).sem_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sem_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::str("a").sem_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sem_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [
            Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(-1.0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(-1.0));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::str("z"));
    }

    #[test]
    fn eq_and_hash_consistent_across_int_float() {
        // Int(2) == Float(2.0) per Eq, so they must hash identically.
        let mut map: HashMap<Value, &str> = HashMap::new();
        map.insert(Value::Int(2), "two");
        assert_eq!(map.get(&Value::Float(2.0)), Some(&"two"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(42.0).to_string(), "42.0");
        assert_eq!(Value::Float(0.125).to_string(), "0.125");
        assert_eq!(Value::str("PhD").to_string(), "PhD");
        assert_eq!(Value::Null.to_string(), "∅");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn nan_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
    }
}
