//! Zero-copy column views — the shared data plane under the ChARLES search.
//!
//! The candidate search evaluates thousands of `(C, T, k)` triples against
//! the *same* source snapshot, from many worker threads at once. Views make
//! that cheap: a [`NumericView`] or [`CodesView`] is a couple of
//! `Arc` pointers into the column's own storage, so extraction happens once
//! per run and every reader — on any thread — scans the identical buffers.
//! Cloning a view never copies data.
//!
//! Views also carry a *window*: [`NumericView::slice`] and
//! [`CodesView::slice`] narrow a view to a [`RowRange`] without touching
//! the shared buffer, which is what makes row-range **sharding** of the
//! search nearly free — a shard is just a set of windows over the same
//! `Arc`-backed columns.
//!
//! [`CodeGroups`] is the group-by companion: rows grouped directly by
//! dictionary code, with no string materialization or hashing in the loop.

use crate::column::StrDict;
use std::ops::Deref;
use std::sync::Arc;

/// A half-open range of row indices `[start, end)` — the currency of
/// row-range sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First row of the range.
    pub start: usize,
    /// One past the last row of the range.
    pub end: usize,
}

impl RowRange {
    /// The range `[start, end)`. An inverted pair collapses to empty.
    pub fn new(start: usize, end: usize) -> Self {
        RowRange {
            start,
            end: end.max(start),
        }
    }

    /// Number of rows in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Split `[0, n_rows)` into `n_shards` contiguous ranges whose
    /// boundaries (except the final `n_rows`) are multiples of `align`.
    ///
    /// Alignment is what lets shard-local *blocked* reductions merge
    /// bit-exactly: when every boundary sits on the reduction's block
    /// grid, no block straddles two shards, so the merged fold visits the
    /// identical block sums in the identical order regardless of shard
    /// count. Whole blocks are distributed near-equally; with more shards
    /// than blocks the trailing ranges are empty (`[n, n)`), which callers
    /// must tolerate — an empty shard simply contributes nothing.
    pub fn split_aligned(n_rows: usize, n_shards: usize, align: usize) -> Vec<RowRange> {
        let n_shards = n_shards.max(1);
        let align = align.max(1);
        let n_blocks = n_rows.div_ceil(align);
        (0..n_shards)
            .map(|i| {
                let lo_block = i * n_blocks / n_shards;
                let hi_block = (i + 1) * n_blocks / n_shards;
                RowRange::new(
                    (lo_block * align).min(n_rows),
                    (hi_block * align).min(n_rows),
                )
            })
            .collect()
    }
}

/// A dense, null-free `f64` view of a column, shared via `Arc` — possibly
/// a [`RowRange`] window into the buffer.
///
/// Dereferences to `&[f64]`, so it drops into any slice-based numeric code.
#[derive(Debug, Clone)]
pub struct NumericView {
    values: Arc<Vec<f64>>,
    offset: usize,
    len: usize,
}

impl NumericView {
    /// Wrap freshly computed values (a full-buffer window).
    pub fn new(values: Vec<f64>) -> Self {
        NumericView::from_arc(Arc::new(values))
    }

    /// Share an existing buffer (zero-copy, full-buffer window).
    pub fn from_arc(values: Arc<Vec<f64>>) -> Self {
        let len = values.len();
        NumericView {
            values,
            offset: 0,
            len,
        }
    }

    /// The underlying shared buffer (for aliasing checks and re-wrapping).
    /// Note this is the *whole* buffer: a sliced view shares the same
    /// allocation as its parent — compare [`NumericView::range`] too when
    /// identity of the window matters.
    pub fn shared(&self) -> &Arc<Vec<f64>> {
        &self.values
    }

    /// The window this view exposes, in buffer coordinates.
    pub fn range(&self) -> RowRange {
        RowRange::new(self.offset, self.offset + self.len)
    }

    /// A zero-copy sub-window: `range` is interpreted relative to this
    /// view (so slicing composes), clamped to its bounds.
    pub fn slice(&self, range: RowRange) -> NumericView {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len).max(start);
        NumericView {
            values: Arc::clone(&self.values),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The values as a plain slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values[self.offset..self.offset + self.len]
    }

    /// Gather the values at `rows` (view-relative indices) into a fresh
    /// vector — one dense indexed pass over the window slice, no per-row
    /// column dispatch. Panics if any index is out of the window, like
    /// slice indexing.
    pub fn gather(&self, rows: &[usize]) -> Vec<f64> {
        let s = self.as_slice();
        rows.iter().map(|&r| s[r]).collect()
    }

    /// Whether `rows` is exactly the identity selection `0..len` of this
    /// view — the common full-coverage case where callers can skip
    /// gathering and read [`NumericView::as_slice`] directly.
    pub fn covers_all_rows(&self, rows: &[usize]) -> bool {
        rows.len() == self.len && rows.iter().enumerate().all(|(i, &r)| r == i)
    }
}

impl Deref for NumericView {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<Vec<f64>> for NumericView {
    fn from(values: Vec<f64>) -> Self {
        NumericView::new(values)
    }
}

/// A zero-copy view of a dictionary-encoded string column: shared
/// dictionary, shared per-row codes, shared validity — possibly a
/// [`RowRange`] window.
#[derive(Debug, Clone)]
pub struct CodesView {
    dict: Arc<StrDict>,
    codes: Arc<Vec<u32>>,
    validity: Option<Arc<Vec<bool>>>,
    offset: usize,
    len: usize,
}

impl CodesView {
    /// Assemble from shared parts (used by `Column::codes_view`).
    pub fn new(dict: Arc<StrDict>, codes: Arc<Vec<u32>>, validity: Option<Arc<Vec<bool>>>) -> Self {
        let len = codes.len();
        CodesView {
            dict,
            codes,
            validity,
            offset: 0,
            len,
        }
    }

    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-window over the same dictionary, codes, and
    /// validity; `range` is relative to this view and clamped.
    pub fn slice(&self, range: RowRange) -> CodesView {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len).max(start);
        CodesView {
            dict: Arc::clone(&self.dict),
            codes: Arc::clone(&self.codes),
            validity: self.validity.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The dictionary code at row `i` (window-relative), or `None` for a
    /// null.
    pub fn code(&self, i: usize) -> Option<u32> {
        match &self.validity {
            Some(mask) if !mask[self.offset + i] => None,
            _ => Some(self.codes[self.offset + i]),
        }
    }

    /// The raw code buffer of the window (entries at null rows are
    /// meaningless).
    pub fn codes(&self) -> &[u32] {
        &self.codes[self.offset..self.offset + self.len]
    }

    /// Resolve a code to its string.
    pub fn resolve(&self, code: u32) -> &str {
        self.dict.resolve(code)
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &StrDict {
        &self.dict
    }

    /// Number of distinct strings in the dictionary (an upper bound on the
    /// column's cardinality).
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Group the window's rows by dictionary code; see
    /// [`CodeGroups::from_codes`]. Row indices in the result are
    /// window-relative.
    pub fn group_codes(&self) -> CodeGroups {
        CodeGroups::from_codes(
            self.codes(),
            self.dict.len(),
            self.validity
                .as_deref()
                .map(|v| &v[self.offset..self.offset + self.len]),
        )
    }
}

/// A typed zero-copy view of one column.
#[derive(Debug, Clone)]
pub enum ColumnView {
    /// Dense numeric values (numeric and boolean columns).
    Numeric(NumericView),
    /// Dictionary codes (string columns).
    Codes(CodesView),
}

impl ColumnView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Numeric(v) => v.as_slice().len(),
            ColumnView::Codes(v) => v.len(),
        }
    }

    /// Whether the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The numeric view, if this is one.
    pub fn as_numeric(&self) -> Option<&NumericView> {
        match self {
            ColumnView::Numeric(v) => Some(v),
            ColumnView::Codes(_) => None,
        }
    }

    /// The codes view, if this is one.
    pub fn as_codes(&self) -> Option<&CodesView> {
        match self {
            ColumnView::Codes(v) => Some(v),
            ColumnView::Numeric(_) => None,
        }
    }
}

/// Rows grouped by dictionary code — the integer-keyed replacement for
/// `HashMap<String, Vec<usize>>` group-bys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeGroups {
    /// Per-row dense group label (0-based, in order of first appearance).
    pub labels: Vec<usize>,
    /// One entry per distinct group, in order of first appearance: the
    /// dictionary code (`None` for the null group) and its rows in row
    /// order.
    pub groups: Vec<(Option<u32>, Vec<usize>)>,
}

impl CodeGroups {
    /// Group `codes` (with `n_codes` possible distinct codes) by value.
    /// Rows where `validity` is false form a single null group. Runs in
    /// O(rows + n_codes) with no hashing.
    pub fn from_codes(codes: &[u32], n_codes: usize, validity: Option<&[bool]>) -> Self {
        const UNSEEN: usize = usize::MAX;
        let mut slot_of_code = vec![UNSEEN; n_codes];
        let mut null_slot = UNSEEN;
        let mut labels = Vec::with_capacity(codes.len());
        let mut groups: Vec<(Option<u32>, Vec<usize>)> = Vec::new();
        for (row, &code) in codes.iter().enumerate() {
            let valid = validity.is_none_or(|m| m[row]);
            let slot = if valid {
                let slot = &mut slot_of_code[code as usize];
                if *slot == UNSEEN {
                    *slot = groups.len();
                    groups.push((Some(code), Vec::new()));
                }
                *slot
            } else {
                if null_slot == UNSEEN {
                    null_slot = groups.len();
                    groups.push((None, Vec::new()));
                }
                null_slot
            };
            groups[slot].1.push(row);
            labels.push(slot);
        }
        CodeGroups { labels, groups }
    }

    /// Number of distinct groups (including the null group, if present).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Whether any row was null.
    pub fn has_null_group(&self) -> bool {
        self.groups.iter().any(|(code, _)| code.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    #[test]
    fn numeric_view_derefs_to_slice() {
        let view = NumericView::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.iter().sum::<f64>(), 6.0);
        assert_eq!(view.as_slice(), &[1.0, 2.0, 3.0]);
        let from: NumericView = vec![4.0].into();
        assert_eq!(&*from, &[4.0]);
    }

    #[test]
    fn codes_view_roundtrip() {
        let mut col = Column::from_strs(&["x", "y", "x"]);
        col.push(Value::Null).unwrap();
        let view = col.codes_view().unwrap();
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.code(0), view.code(2));
        assert_ne!(view.code(0), view.code(1));
        assert_eq!(view.code(3), None);
        assert_eq!(view.resolve(view.code(1).unwrap()), "y");
        assert_eq!(view.dict_len(), 2);
        // Grouping through the view matches grouping through the column.
        assert_eq!(view.group_codes(), col.group_codes().unwrap());
    }

    #[test]
    fn column_view_dispatch() {
        let num = Column::from_f64(vec![1.0]).view("n").unwrap();
        assert!(num.as_numeric().is_some());
        assert!(num.as_codes().is_none());
        assert_eq!(num.len(), 1);
        let cat = Column::from_strs(&["a"]).view("c").unwrap();
        assert!(cat.as_codes().is_some());
        assert!(cat.as_numeric().is_none());
    }

    #[test]
    fn numeric_slice_is_zero_copy_window() {
        let view = NumericView::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mid = view.slice(RowRange::new(1, 4));
        assert_eq!(mid.as_slice(), &[2.0, 3.0, 4.0]);
        assert!(Arc::ptr_eq(view.shared(), mid.shared()));
        assert_eq!(mid.range(), RowRange::new(1, 4));
        // Slicing composes relative to the window.
        let inner = mid.slice(RowRange::new(1, 2));
        assert_eq!(inner.as_slice(), &[3.0]);
        assert_eq!(inner.range(), RowRange::new(2, 3));
        // Out-of-bounds requests clamp instead of panicking.
        assert_eq!(view.slice(RowRange::new(3, 99)).as_slice(), &[4.0, 5.0]);
        assert!(view.slice(RowRange::new(9, 12)).is_empty());
        assert!(view.slice(RowRange::new(2, 2)).is_empty());
    }

    #[test]
    fn codes_slice_matches_full_view() {
        let mut col = Column::from_strs(&["x", "y", "x", "z"]);
        col.push(Value::Null).unwrap();
        let view = col.codes_view().unwrap();
        let tail = view.slice(RowRange::new(2, 5));
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.code(0), view.code(2));
        assert_eq!(tail.code(1), view.code(3));
        assert_eq!(tail.code(2), None, "null row survives slicing");
        assert_eq!(tail.codes(), &view.codes()[2..]);
        // Window grouping equals grouping the window's rows directly.
        let grouped = tail.group_codes();
        assert_eq!(grouped.n_groups(), 3); // x, z, null
        assert!(grouped.has_null_group());
        assert_eq!(grouped.labels.len(), 3);
    }

    #[test]
    fn row_range_split_aligned_covers_and_aligns() {
        for (rows, shards, align) in [
            (1000usize, 3usize, 128usize),
            (1000, 7, 128),
            (1000, 1, 128),
            (100, 4, 128), // fewer blocks than shards → empty shards
            (0, 3, 128),   // empty table
            (257, 2, 128),
            (5, 3, 1),
        ] {
            let ranges = RowRange::split_aligned(rows, shards, align);
            assert_eq!(ranges.len(), shards.max(1));
            // Contiguous cover of [0, rows).
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, rows);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
            // Interior boundaries sit on the block grid.
            for r in &ranges {
                assert!(r.start % align == 0, "{rows}/{shards}/{align}: {r:?}");
                assert!(r.end % align == 0 || r.end == rows);
            }
        }
    }

    #[test]
    fn code_groups_dense_and_ordered() {
        let groups = CodeGroups::from_codes(&[2, 0, 2, 1, 0], 3, None);
        assert_eq!(groups.n_groups(), 3);
        assert_eq!(groups.labels, vec![0, 1, 0, 2, 1]);
        assert_eq!(groups.groups[0], (Some(2), vec![0, 2]));
        assert_eq!(groups.groups[1], (Some(0), vec![1, 4]));
        assert_eq!(groups.groups[2], (Some(1), vec![3]));
        assert!(!groups.has_null_group());
        let with_null = CodeGroups::from_codes(&[0, 0, 1], 2, Some(&[true, false, true]));
        assert!(with_null.has_null_group());
        assert_eq!(with_null.n_groups(), 3);
    }
}
