//! Zero-copy column views — the shared data plane under the ChARLES search.
//!
//! The candidate search evaluates thousands of `(C, T, k)` triples against
//! the *same* source snapshot, from many worker threads at once. Views make
//! that cheap: a [`NumericView`] or [`CodesView`] is a couple of
//! `Arc` pointers into the column's own storage, so extraction happens once
//! per run and every reader — on any thread — scans the identical buffers.
//! Cloning a view never copies data.
//!
//! [`CodeGroups`] is the group-by companion: rows grouped directly by
//! dictionary code, with no string materialization or hashing in the loop.

use crate::column::StrDict;
use std::ops::Deref;
use std::sync::Arc;

/// A dense, null-free `f64` view of a column, shared via `Arc`.
///
/// Dereferences to `&[f64]`, so it drops into any slice-based numeric code.
#[derive(Debug, Clone)]
pub struct NumericView {
    values: Arc<Vec<f64>>,
}

impl NumericView {
    /// Wrap freshly computed values.
    pub fn new(values: Vec<f64>) -> Self {
        NumericView {
            values: Arc::new(values),
        }
    }

    /// Share an existing buffer (zero-copy).
    pub fn from_arc(values: Arc<Vec<f64>>) -> Self {
        NumericView { values }
    }

    /// The underlying shared buffer (for aliasing checks and re-wrapping).
    pub fn shared(&self) -> &Arc<Vec<f64>> {
        &self.values
    }

    /// The values as a plain slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

impl Deref for NumericView {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.values
    }
}

impl From<Vec<f64>> for NumericView {
    fn from(values: Vec<f64>) -> Self {
        NumericView::new(values)
    }
}

/// A zero-copy view of a dictionary-encoded string column: shared
/// dictionary, shared per-row codes, shared validity.
#[derive(Debug, Clone)]
pub struct CodesView {
    dict: Arc<StrDict>,
    codes: Arc<Vec<u32>>,
    validity: Option<Arc<Vec<bool>>>,
}

impl CodesView {
    /// Assemble from shared parts (used by `Column::codes_view`).
    pub fn new(dict: Arc<StrDict>, codes: Arc<Vec<u32>>, validity: Option<Arc<Vec<bool>>>) -> Self {
        CodesView {
            dict,
            codes,
            validity,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary code at row `i`, or `None` for a null.
    pub fn code(&self, i: usize) -> Option<u32> {
        match &self.validity {
            Some(mask) if !mask[i] => None,
            _ => Some(self.codes[i]),
        }
    }

    /// The raw code buffer (entries at null rows are meaningless).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Resolve a code to its string.
    pub fn resolve(&self, code: u32) -> &str {
        self.dict.resolve(code)
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &StrDict {
        &self.dict
    }

    /// Number of distinct strings in the dictionary (an upper bound on the
    /// column's cardinality).
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Group rows by dictionary code; see [`CodeGroups::from_codes`].
    pub fn group_codes(&self) -> CodeGroups {
        CodeGroups::from_codes(
            &self.codes,
            self.dict.len(),
            self.validity.as_deref().map(Vec::as_slice),
        )
    }
}

/// A typed zero-copy view of one column.
#[derive(Debug, Clone)]
pub enum ColumnView {
    /// Dense numeric values (numeric and boolean columns).
    Numeric(NumericView),
    /// Dictionary codes (string columns).
    Codes(CodesView),
}

impl ColumnView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Numeric(v) => v.as_slice().len(),
            ColumnView::Codes(v) => v.len(),
        }
    }

    /// Whether the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The numeric view, if this is one.
    pub fn as_numeric(&self) -> Option<&NumericView> {
        match self {
            ColumnView::Numeric(v) => Some(v),
            ColumnView::Codes(_) => None,
        }
    }

    /// The codes view, if this is one.
    pub fn as_codes(&self) -> Option<&CodesView> {
        match self {
            ColumnView::Codes(v) => Some(v),
            ColumnView::Numeric(_) => None,
        }
    }
}

/// Rows grouped by dictionary code — the integer-keyed replacement for
/// `HashMap<String, Vec<usize>>` group-bys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeGroups {
    /// Per-row dense group label (0-based, in order of first appearance).
    pub labels: Vec<usize>,
    /// One entry per distinct group, in order of first appearance: the
    /// dictionary code (`None` for the null group) and its rows in row
    /// order.
    pub groups: Vec<(Option<u32>, Vec<usize>)>,
}

impl CodeGroups {
    /// Group `codes` (with `n_codes` possible distinct codes) by value.
    /// Rows where `validity` is false form a single null group. Runs in
    /// O(rows + n_codes) with no hashing.
    pub fn from_codes(codes: &[u32], n_codes: usize, validity: Option<&[bool]>) -> Self {
        const UNSEEN: usize = usize::MAX;
        let mut slot_of_code = vec![UNSEEN; n_codes];
        let mut null_slot = UNSEEN;
        let mut labels = Vec::with_capacity(codes.len());
        let mut groups: Vec<(Option<u32>, Vec<usize>)> = Vec::new();
        for (row, &code) in codes.iter().enumerate() {
            let valid = validity.is_none_or(|m| m[row]);
            let slot = if valid {
                let slot = &mut slot_of_code[code as usize];
                if *slot == UNSEEN {
                    *slot = groups.len();
                    groups.push((Some(code), Vec::new()));
                }
                *slot
            } else {
                if null_slot == UNSEEN {
                    null_slot = groups.len();
                    groups.push((None, Vec::new()));
                }
                null_slot
            };
            groups[slot].1.push(row);
            labels.push(slot);
        }
        CodeGroups { labels, groups }
    }

    /// Number of distinct groups (including the null group, if present).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Whether any row was null.
    pub fn has_null_group(&self) -> bool {
        self.groups.iter().any(|(code, _)| code.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    #[test]
    fn numeric_view_derefs_to_slice() {
        let view = NumericView::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.iter().sum::<f64>(), 6.0);
        assert_eq!(view.as_slice(), &[1.0, 2.0, 3.0]);
        let from: NumericView = vec![4.0].into();
        assert_eq!(&*from, &[4.0]);
    }

    #[test]
    fn codes_view_roundtrip() {
        let mut col = Column::from_strs(&["x", "y", "x"]);
        col.push(Value::Null).unwrap();
        let view = col.codes_view().unwrap();
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.code(0), view.code(2));
        assert_ne!(view.code(0), view.code(1));
        assert_eq!(view.code(3), None);
        assert_eq!(view.resolve(view.code(1).unwrap()), "y");
        assert_eq!(view.dict_len(), 2);
        // Grouping through the view matches grouping through the column.
        assert_eq!(view.group_codes(), col.group_codes().unwrap());
    }

    #[test]
    fn column_view_dispatch() {
        let num = Column::from_f64(vec![1.0]).view("n").unwrap();
        assert!(num.as_numeric().is_some());
        assert!(num.as_codes().is_none());
        assert_eq!(num.len(), 1);
        let cat = Column::from_strs(&["a"]).view("c").unwrap();
        assert!(cat.as_codes().is_some());
        assert!(cat.as_numeric().is_none());
    }

    #[test]
    fn code_groups_dense_and_ordered() {
        let groups = CodeGroups::from_codes(&[2, 0, 2, 1, 0], 3, None);
        assert_eq!(groups.n_groups(), 3);
        assert_eq!(groups.labels, vec![0, 1, 0, 2, 1]);
        assert_eq!(groups.groups[0], (Some(2), vec![0, 2]));
        assert_eq!(groups.groups[1], (Some(0), vec![1, 4]));
        assert_eq!(groups.groups[2], (Some(1), vec![3]));
        assert!(!groups.has_null_group());
        let with_null = CodeGroups::from_codes(&[0, 0, 1], 2, Some(&[true, false, true]));
        assert!(with_null.has_null_group());
        assert_eq!(with_null.n_groups(), 3);
    }
}
