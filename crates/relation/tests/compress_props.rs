//! Property tests for the compressed column plane ([`charles_relation::compress`]).
//!
//! Two contracts are pinned here, differentially against the raw path:
//!
//! 1. **Lossless round-trip** — for every block encoding (constant, delta/
//!    bitpack, raw floats, RLE and packed codes), `compress` → `decompress`
//!    reproduces the original buffer `f64::to_bits`-exactly, including NaN
//!    payloads, ±∞, signed zero, all-null blocks, and partial tail blocks.
//! 2. **Zone-pruning transparency** — predicate masks evaluated over
//!    sealed columns (where whole blocks may be answered from zone maps
//!    without decoding) equal the full-scan masks on the raw twin
//!    bit-for-bit, for every comparison operator, Between, and InSet.

use charles_relation::{
    CmpOp, Column, DataType, Field, Predicate, Schema, Table, Value, GRAM_BLOCK_ROWS,
};
use proptest::prelude::*;

/// Floats that stress every encoding: integer-valued (delta/bitpack),
/// arbitrary reals (raw bits), specials (NaN, ±∞, signed zero), nulls.
fn float_value() -> BoxedStrategy<Value> {
    prop_oneof![
        4 => (-1_000_000i64..1_000_000).prop_map(|v| Value::Float(v as f64)),
        2 => (-1e12f64..1e12).prop_map(Value::Float),
        1 => prop_oneof![
            Just(Value::Float(f64::NAN)),
            Just(Value::Float(f64::INFINITY)),
            Just(Value::Float(f64::NEG_INFINITY)),
            Just(Value::Float(0.0)),
            Just(Value::Float(-0.0)),
        ],
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// Integers across narrow (bitpackable) and full-width ranges, plus nulls.
fn int_value() -> BoxedStrategy<Value> {
    prop_oneof![
        4 => (-1_000i64..1_000).prop_map(Value::Int),
        1 => any::<i64>().prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// Strings over a tiny alphabet (dictionary stays small, runs are common
/// enough that both the RLE and the packed code encodings get exercised).
fn str_value() -> BoxedStrategy<Value> {
    prop_oneof![
        5 => "[abc]{1,2}".prop_map(Value::str),
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// A column of `dtype` cells, long enough to span several 128-row blocks
/// plus a partial tail.
fn column_of(
    dtype: DataType,
    cell: BoxedStrategy<Value>,
) -> impl Strategy<Value = Column> {
    proptest::collection::vec(cell, 0..(3 * GRAM_BLOCK_ROWS + 7))
        .prop_map(move |vals| Column::from_values(dtype, &vals).unwrap())
}

/// Bit-exact slot comparison: validity must agree, and valid slots must
/// hold identical values (floats compared on `to_bits`, so NaN payloads
/// and -0.0 count).
fn assert_slots_identical(raw: &Column, sealed: &Column) -> Result<(), TestCaseError> {
    prop_assert_eq!(raw.len(), sealed.len());
    prop_assert_eq!(raw.dtype(), sealed.dtype());
    for i in 0..raw.len() {
        prop_assert_eq!(raw.is_valid(i), sealed.is_valid(i), "validity at {}", i);
        if !raw.is_valid(i) {
            continue;
        }
        match (raw.get(i), sealed.get(i)) {
            (Value::Float(a), Value::Float(b)) => {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "float bits at {}", i);
            }
            (a, b) => prop_assert_eq!(a, b, "value at {}", i),
        }
    }
    Ok(())
}

/// A one-column table over `col` named `x`.
fn table_of(col: Column) -> Table {
    let schema = Schema::new(vec![Field::new("x", col.dtype())]).unwrap();
    Table::new(schema, vec![col]).unwrap()
}

/// Comparison literals biased toward values the generators actually emit,
/// so zone maps see genuine AllTrue/AllFalse/Decode mixes — plus the
/// specials whose classification has sharp edges.
fn float_literal() -> BoxedStrategy<f64> {
    prop_oneof![
        4 => (-1_000_000i64..1_000_000).prop_map(|v| v as f64),
        2 => -1e12f64..1e12,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(0.0),
            Just(-0.0),
        ],
    ]
    .boxed()
}

fn any_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn float_encodings_roundtrip_to_bits(col in column_of(DataType::Float64, float_value())) {
        let sealed = col.compress();
        prop_assert!(sealed.is_compressed());
        assert_slots_identical(&col, &sealed)?;
        // And back out through the explicit decode.
        let raw_again = sealed.decompress();
        prop_assert!(!raw_again.is_compressed());
        assert_slots_identical(&col, &raw_again)?;
    }

    #[test]
    fn int_encodings_roundtrip(col in column_of(DataType::Int64, int_value())) {
        let sealed = col.compress();
        prop_assert!(sealed.is_compressed());
        assert_slots_identical(&col, &sealed)?;
        assert_slots_identical(&col, &sealed.decompress())?;
    }

    #[test]
    fn code_encodings_roundtrip(col in column_of(DataType::Utf8, str_value())) {
        let sealed = col.compress();
        prop_assert!(sealed.is_compressed());
        assert_slots_identical(&col, &sealed)?;
        assert_slots_identical(&col, &sealed.decompress())?;
    }

    #[test]
    fn zone_pruned_cmp_masks_match_full_scan(
        col in column_of(DataType::Float64, float_value()),
        op in any_op(),
        lit in float_literal(),
    ) {
        let raw = table_of(col.clone());
        let sealed = raw.sealed();
        let p = Predicate::cmp("x", op, Value::Float(lit));
        let a = p.eval_mask(&raw).unwrap();
        let b = p.eval_mask(&sealed).unwrap();
        prop_assert_eq!(a, b, "op={:?} lit={}", op, lit);
    }

    #[test]
    fn zone_pruned_int_masks_match_full_scan(
        col in column_of(DataType::Int64, int_value()),
        op in any_op(),
        lit in -1_000i64..1_000,
    ) {
        let raw = table_of(col.clone());
        let sealed = raw.sealed();
        let p = Predicate::cmp("x", op, Value::Int(lit));
        let a = p.eval_mask(&raw).unwrap();
        let b = p.eval_mask(&sealed).unwrap();
        prop_assert_eq!(a, b, "op={:?} lit={}", op, lit);
    }

    #[test]
    fn zone_pruned_between_matches_full_scan(
        col in column_of(DataType::Float64, float_value()),
        lo in float_literal(),
        hi in float_literal(),
    ) {
        let raw = table_of(col.clone());
        let sealed = raw.sealed();
        let p = Predicate::between("x", Value::Float(lo), Value::Float(hi));
        let a = p.eval_mask(&raw).unwrap();
        let b = p.eval_mask(&sealed).unwrap();
        prop_assert_eq!(a, b, "lo={} hi={}", lo, hi);
    }

    #[test]
    fn string_eq_and_inset_match_full_scan(
        col in column_of(DataType::Utf8, str_value()),
        needle in "[abcz]{1,2}",
    ) {
        let raw = table_of(col.clone());
        let sealed = raw.sealed();
        for p in [
            Predicate::eq("x", needle.as_str()),
            Predicate::cmp("x", CmpOp::Ne, Value::str(needle.as_str())),
            Predicate::in_set("x", [Value::str(needle.as_str()), Value::str("a")]),
        ] {
            let a = p.eval_mask(&raw).unwrap();
            let b = p.eval_mask(&sealed).unwrap();
            prop_assert_eq!(a, b, "{}", p);
        }
    }
}

/// All-null columns of every compressible dtype, at block-boundary sizes:
/// empty, one slot, one block minus/exactly/plus one, and a multi-block
/// span with a tail.
#[test]
fn all_null_columns_roundtrip_at_block_boundaries() {
    let sizes = [
        0,
        1,
        GRAM_BLOCK_ROWS - 1,
        GRAM_BLOCK_ROWS,
        GRAM_BLOCK_ROWS + 1,
        3 * GRAM_BLOCK_ROWS + 5,
    ];
    for dtype in [DataType::Float64, DataType::Int64, DataType::Utf8] {
        for &n in &sizes {
            let vals = vec![Value::Null; n];
            let col = Column::from_values(dtype, &vals).unwrap();
            let sealed = col.compress();
            assert_eq!(sealed.len(), n, "{dtype:?} n={n}");
            assert_eq!(sealed.null_count(), n, "{dtype:?} n={n}");
            let back = sealed.decompress();
            assert_eq!(back.null_count(), n, "{dtype:?} n={n}");
            // And an all-null column can never satisfy a comparison.
            if n > 0 {
                let table = table_of(sealed);
                let p = Predicate::cmp("x", CmpOp::Le, Value::Float(0.0));
                let mask = if dtype == DataType::Utf8 {
                    Predicate::eq("x", "a").eval_mask(&table).unwrap()
                } else {
                    p.eval_mask(&table).unwrap()
                };
                assert!(mask.iter().all(|&m| !m), "{dtype:?} n={n}");
            }
        }
    }
}
