//! Property-based tests for the relation substrate.

use charles_relation::{
    read_csv, write_csv, CmpOp, Column, DataType, Predicate, RowRange, Schema, SnapshotPair, Table,
    Value,
};
use proptest::prelude::*;

/// Strategy for a cell value of a given type (including nulls).
fn value_of(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int64 => prop_oneof![
            3 => any::<i64>().prop_map(Value::Int),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Float64 => prop_oneof![
            3 => (-1e12f64..1e12).prop_map(Value::Float),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Utf8 => prop_oneof![
            3 => "[a-zA-Z0-9 ,\"'μ≥-]{0,12}".prop_map(Value::str),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null)
        ]
        .boxed(),
    }
}

fn table_strategy() -> impl Strategy<Value = Table> {
    let dtypes = proptest::collection::vec(
        prop_oneof![
            Just(DataType::Int64),
            Just(DataType::Float64),
            Just(DataType::Utf8),
            Just(DataType::Bool),
        ],
        1..5,
    );
    (dtypes, 0usize..20).prop_flat_map(|(dtypes, rows)| {
        let columns: Vec<BoxedStrategy<Vec<Value>>> = dtypes
            .iter()
            .map(|&t| proptest::collection::vec(value_of(t), rows..=rows).boxed())
            .collect();
        (Just(dtypes), columns).prop_map(|(dtypes, columns)| {
            let schema = Schema::new(
                dtypes
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| charles_relation::Field::new(format!("c{i}"), t))
                    .collect(),
            )
            .unwrap();
            let cols: Vec<Column> = dtypes
                .iter()
                .zip(columns.iter())
                .map(|(&t, vals)| Column::from_values(t, vals).unwrap())
                .collect();
            Table::new(schema, cols).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_content(table in table_strategy()) {
        // CSV cannot represent empty strings distinctly from nulls, nor
        // leading/trailing whitespace (we trim); normalize expectations by
        // comparing through a second roundtrip instead.
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let once = read_csv(buf.as_slice()).unwrap();
        let mut buf2 = Vec::new();
        write_csv(&once, &mut buf2).unwrap();
        let twice = read_csv(buf2.as_slice()).unwrap();
        prop_assert!(once.content_eq(&twice), "roundtrip not idempotent");
        prop_assert_eq!(once.height(), table.height());
        prop_assert_eq!(once.width(), table.width());
    }

    #[test]
    fn filter_take_consistency(table in table_strategy(), keep in proptest::collection::vec(any::<bool>(), 0..20)) {
        let mut mask = keep;
        mask.resize(table.height(), false);
        let filtered = table.filter(&mask).unwrap();
        let indices: Vec<usize> = mask.iter().enumerate()
            .filter_map(|(i, &k)| k.then_some(i)).collect();
        let taken = table.take(&indices);
        prop_assert!(filtered.content_eq(&taken));
        prop_assert_eq!(filtered.height(), indices.len());
    }

    #[test]
    fn double_negation_is_identity(table in table_strategy(), lit in -100i64..100) {
        if table.height() == 0 || !table.schema().contains("c0") {
            return Ok(());
        }
        let p = Predicate::cmp("c0", CmpOp::Le, Value::Int(lit));
        let not_not = p.clone().not().not();
        for row in table.row_ids() {
            prop_assert_eq!(
                p.eval(&table, row).unwrap(),
                not_not.eval(&table, row).unwrap()
            );
        }
    }

    #[test]
    fn predicate_and_complement_partition_non_null_rows(table in table_strategy(), lit in -100i64..100) {
        if table.height() == 0 {
            return Ok(());
        }
        let p = Predicate::cmp("c0", CmpOp::Lt, Value::Int(lit));
        let not_p = p.clone().not();
        for row in table.row_ids() {
            let a = p.eval(&table, row).unwrap();
            let b = not_p.eval(&table, row).unwrap();
            prop_assert_ne!(a, b, "p and ¬p must disagree on every row");
        }
    }

    #[test]
    fn positional_self_alignment_is_lossless(table in table_strategy()) {
        let pair = SnapshotPair::align(table.clone(), table.clone()).unwrap();
        prop_assert_eq!(pair.len(), table.height());
        for row in 0..pair.len() {
            prop_assert_eq!(pair.target_row(row), row);
        }
    }

    #[test]
    fn numeric_view_matches_vec_extraction(table in table_strategy()) {
        // The zero-copy view layer must agree exactly with the original
        // `Table::numeric` Vec extraction — same values, same errors.
        for name in table.schema().names() {
            match (table.numeric(name), table.numeric_view(name)) {
                (Ok(vec), Ok(view)) => {
                    prop_assert_eq!(vec.as_slice(), view.as_slice(), "attr {}", name);
                    // Cloning the view aliases the same buffer.
                    let clone = view.clone();
                    prop_assert!(std::sync::Arc::ptr_eq(view.shared(), clone.shared()));
                }
                (Err(_), Err(_)) => {}
                (vec, view) => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "extraction paths disagree for {name:?}: vec={vec:?} view={view:?}"
                    )));
                }
            }
        }
    }

    #[test]
    fn sliced_views_window_the_same_data(table in table_strategy(), lo in 0usize..24, hi in 0usize..24) {
        // Slicing a view must expose exactly the vector slice of the same
        // window, for both numeric and dictionary-coded columns, and share
        // the parent's storage.
        let range = RowRange::new(lo.min(hi), hi.max(lo));
        for name in table.schema().names() {
            if let Ok(view) = table.numeric_view(name) {
                let sliced = view.slice(range);
                let start = range.start.min(view.len());
                let end = range.end.min(view.len());
                prop_assert_eq!(sliced.as_slice(), &view.as_slice()[start..end]);
                prop_assert!(std::sync::Arc::ptr_eq(view.shared(), sliced.shared()));
            }
            let idx = table.schema().index_of(name).unwrap();
            if let Some(codes) = table.column(idx).unwrap().codes_view() {
                let sliced = codes.slice(range);
                let start = range.start.min(codes.len());
                let end = range.end.min(codes.len());
                prop_assert_eq!(sliced.len(), end - start);
                for (i, row) in (start..end).enumerate() {
                    prop_assert_eq!(sliced.code(i), codes.code(row), "attr {}", name);
                }
            }
        }
    }

    #[test]
    fn row_range_shards_partition_rows(rows in 0usize..600, shards in 1usize..9) {
        let ranges = RowRange::split_aligned(rows, shards, 128);
        prop_assert_eq!(ranges.len(), shards);
        let covered: usize = ranges.iter().map(RowRange::len).sum();
        prop_assert_eq!(covered, rows, "shards must cover every row once");
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn group_codes_matches_string_grouping(table in table_strategy()) {
        // Dictionary-code grouping must induce exactly the partition that
        // grouping by materialized string values induces, nulls included.
        for (idx, field) in table.schema().fields().iter().enumerate() {
            let col = table.column(idx).unwrap();
            let Some(groups) = col.group_codes() else {
                prop_assert!(field.dtype().is_numeric(), "only numeric columns lack code grouping");
                continue;
            };
            // Reference: first-appearance-ordered grouping by Value.
            let mut ref_groups: Vec<(Value, Vec<usize>)> = Vec::new();
            for row in 0..col.len() {
                let v = col.get(row);
                match ref_groups.iter_mut().find(|(key, _)| key == &v) {
                    Some((_, rows)) => rows.push(row),
                    None => ref_groups.push((v, vec![row])),
                }
            }
            prop_assert_eq!(groups.n_groups(), ref_groups.len(), "attr {}", field.name());
            for ((code, rows), (value, ref_rows)) in
                groups.groups.iter().zip(ref_groups.iter())
            {
                prop_assert_eq!(rows, ref_rows, "attr {}", field.name());
                match code {
                    None => prop_assert!(value.is_null()),
                    Some(_) => prop_assert!(!value.is_null()),
                }
            }
            // Labels are consistent with groups.
            for (slot, (_, rows)) in groups.groups.iter().enumerate() {
                for &r in rows {
                    prop_assert_eq!(groups.labels[r], slot);
                }
            }
        }
    }
}

#[test]
fn csv_handles_adversarial_strings() {
    let table = charles_relation::TableBuilder::new("t")
        .str_col(
            "s",
            &["a,b", "he said \"hi\"", "", "  spaced  ", "∅", "line"],
        )
        .build()
        .unwrap();
    let mut buf = Vec::new();
    write_csv(&table, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    assert_eq!(back.value(0, "s").unwrap(), Value::str("a,b"));
    assert_eq!(back.value(1, "s").unwrap(), Value::str("he said \"hi\""));
    // Empty string becomes null through CSV (documented limitation).
    assert_eq!(back.value(2, "s").unwrap(), Value::Null);
}
