//! `charles-worker` — a shard worker process for distributed search.
//!
//! A worker is a plain `charles-server` run in the worker role: it hosts
//! datasets (loaded over the wire via CSV ingest, or pre-registered from
//! disk with `--dataset`) and answers a coordinator's block-range
//! statistic requests (`shard_signals` / `shard_moments` / `shard_gram`
//! on `/v1/rpc`) bit-exactly. Any number of coordinators can share one
//! worker; any worker can serve any block range of a dataset it hosts.
//!
//! Usage:
//!
//! ```text
//! charles-worker [addr] [--dataset name=source.csv,target.csv[,key]]...
//! ```
//!
//! `addr` defaults to `127.0.0.1:0` (a free port). The bound address is
//! printed on stdout as `charles-worker listening on http://<addr>` so
//! spawning scripts can scrape it; the process then serves until killed.

use charles_core::{ManagerConfig, SessionManager};
use charles_server::{Server, ServerConfig};
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--dataset" {
            let spec = args
                .next()
                .unwrap_or_else(|| usage("--dataset needs a value"));
            let (name, files) = spec
                .split_once('=')
                .unwrap_or_else(|| usage("--dataset wants name=source.csv,target.csv[,key]"));
            let parts: Vec<&str> = files.split(',').collect();
            match parts.as_slice() {
                [source, target] => {
                    manager.register_csv(name, source, target, None);
                }
                [source, target, key] => {
                    manager.register_csv(name, source, target, Some((*key).to_string()));
                }
                _ => usage("--dataset wants name=source.csv,target.csv[,key]"),
            }
            eprintln!("charles-worker: registered dataset {name:?}");
        } else if arg == "--help" || arg == "-h" {
            usage("");
        } else {
            addr = arg;
        }
    }

    let server = Server::start(manager, ServerConfig::default().with_addr(addr))
        .unwrap_or_else(|e| usage(&format!("failed to bind: {e}")));
    println!("charles-worker listening on http://{}", server.local_addr());
    // Serve until the process is killed; the Server's own threads do all
    // the work. (std has no "park forever" that cannot spuriously wake,
    // so loop around it.)
    loop {
        std::thread::park();
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("charles-worker: {error}");
    }
    eprintln!(
        "usage: charles-worker [addr] [--dataset name=source.csv,target.csv[,key]]...\n\
         default addr 127.0.0.1:0 (free port); datasets can also be loaded over the wire"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
