//! A tiny blocking HTTP client over raw [`TcpStream`]s — enough to drive
//! the server from examples, benchmarks, and smoke tests without any
//! dependency. One request per connection (`Connection: close`).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed HTTP response: status code plus body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body, decoded as UTF-8.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Issue one request and read the full response.
///
/// `body = Some(json)` sends a `Content-Length` body; `None` sends a bare
/// request. The connection is closed after the exchange.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: charles\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len(),
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Split a raw HTTP/1.x response into status + body (honoring
/// `Content-Length` when present, else everything after the head).
pub fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let head_end = text
        .find("\r\n\r\n")
        .map(|i| (i, i + 4))
        .or_else(|| text.find("\n\n").map(|i| (i, i + 2)))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header terminator"))?;
    let (head, body) = (&text[..head_end.0], &text[head_end.1..]);
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
    {
        // `get` (not slicing) so a Content-Length landing inside a
        // multi-byte UTF-8 character degrades to the whole tail instead
        // of panicking on a non-boundary index.
        Some(len) => body.get(..len).unwrap_or(body),
        _ => body,
    };
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\":true}extra";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"ok\":true}");
        assert!(response.is_success());
    }

    #[test]
    fn parses_response_without_content_length() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\n\r\nbusy";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.body, "busy");
        assert!(!response.is_success());
    }

    #[test]
    fn content_length_inside_utf8_char_does_not_panic() {
        // "日本" is 6 bytes; a bogus Content-Length of 4 lands mid-char.
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n日本".as_bytes();
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "日本");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
