//! A tiny blocking HTTP client over raw [`TcpStream`]s — enough to drive
//! the server from examples, benchmarks, and smoke tests without any
//! dependency.
//!
//! Two modes: [`http_request`] opens one connection per request
//! (`Connection: close` — the cold-path baseline), while [`HttpClient`]
//! holds a **keep-alive** connection and frames responses by
//! `Content-Length`, so sequential requests ride one TCP stream — the
//! mode `bench_serve` uses to measure engine cost without per-request
//! connection setup.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed HTTP response: status code plus body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body, decoded as UTF-8.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Issue one request and read the full response.
///
/// `body = Some(json)` sends a `Content-Length` body; `None` sends a bare
/// request. The connection is closed after the exchange.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: charles\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len(),
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// A blocking keep-alive HTTP client: one connection, many requests.
///
/// Responses are framed by `Content-Length` (which this server always
/// sends), so the stream stays aligned between requests.
///
/// ## Stale-connection recovery
///
/// A keep-alive connection can die *between* requests: the server's
/// idle-timeout reaper closes it, the process restarts, a NAT forgets the
/// mapping. The next `request` then fails in one of two benign ways — the
/// write errors out, or the write "succeeds" into a dead socket and the
/// read sees EOF/reset before a single response byte. Both mean no
/// response was consumed, so the client transparently reconnects to the
/// same address and retries the request **once**. Long-lived channels
/// (a distributed coordinator holding worker connections for minutes
/// between queries) rely on this. A failure *after* response bytes
/// arrived is never retried — the stream is ambiguous at that point and
/// the error surfaces to the caller.
pub struct HttpClient {
    addr: std::net::SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    closed: bool,
    /// Whether the current `read_response` has consumed any bytes (the
    /// retry-safety test: EOF *before* any byte means a stale close).
    response_started: bool,
    read_timeout: Option<std::time::Duration>,
    reconnects: usize,
}

impl HttpClient {
    /// Connect to the server. Nagle's algorithm is disabled: a keep-alive
    /// exchange is strictly request→response, so batching small writes
    /// only buys 40 ms delayed-ACK stalls, not throughput.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            addr,
            reader: BufReader::new(stream),
            writer,
            closed: false,
            response_started: false,
            read_timeout: None,
            reconnects: 0,
        })
    }

    /// Bound how long a read may block (e.g. while probing whether the
    /// server closed an idle connection). Survives reconnects.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Whether the server has signalled (or performed) a close that a
    /// reconnect has not yet replaced.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// How many times this client has transparently replaced a stale
    /// connection.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// Replace the dead connection with a fresh one to the same address.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        self.closed = false;
        self.reconnects += 1;
        Ok(())
    }

    /// Whether a failed exchange is safe to retry on a fresh connection:
    /// nothing of a response was consumed, so the request observably
    /// never reached a live server.
    fn retryable(&self, error: &io::Error) -> bool {
        if self.response_started {
            return false;
        }
        matches!(
            error.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::NotConnected
        )
    }

    /// Issue one request on the shared connection and read one framed
    /// response, transparently reconnecting once if the connection turns
    /// out to have gone stale since the previous exchange.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        if self.closed {
            // The previous response said `Connection: close` (or the
            // stream already died): start fresh rather than failing fast.
            self.reconnect()?;
        }
        match self.exchange(method, path, body) {
            Ok(response) => Ok(response),
            Err(e) if self.retryable(&e) => {
                self.reconnect()?;
                self.exchange(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    /// One write + one framed read on the current connection.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let payload = body.unwrap_or("");
        // One buffer, one write: head + body must not straddle TCP
        // segments that Nagle could hold back mid-request.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: charles\r\nConnection: keep-alive\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len(),
        );
        self.response_started = false;
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read one response head + `Content-Length` body from the stream.
    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                self.closed = true;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    if self.response_started {
                        "connection closed mid-response"
                    } else {
                        "connection closed before the response (stale keep-alive)"
                    },
                ));
            }
            self.response_started = true;
            if line.trim_end_matches(['\r', '\n']).is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let status = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let header = |name: &str| -> Option<&str> {
            head.lines().find_map(|l| {
                l.split_once(':')
                    .filter(|(k, _)| k.eq_ignore_ascii_case(name))
                    .map(|(_, v)| v.trim())
            })
        };
        if header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.closed = true;
        }
        let len: usize = header("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response without Content-Length",
                )
            })?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        Ok(HttpResponse { status, body })
    }
}

/// Split a raw HTTP/1.x response into status + body (honoring
/// `Content-Length` when present, else everything after the head).
pub fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let head_end = text
        .find("\r\n\r\n")
        .map(|i| (i, i + 4))
        .or_else(|| text.find("\n\n").map(|i| (i, i + 2)))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header terminator"))?;
    // lint:allow(no-panic-in-request-path: both offsets come from find on text, so they are in-bounds char boundaries)
    let (head, body) = (&text[..head_end.0], &text[head_end.1..]);
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
    {
        // `get` (not slicing) so a Content-Length landing inside a
        // multi-byte UTF-8 character degrades to the whole tail instead
        // of panicking on a non-boundary index.
        Some(len) => body.get(..len).unwrap_or(body),
        _ => body,
    };
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\":true}extra";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"ok\":true}");
        assert!(response.is_success());
    }

    #[test]
    fn parses_response_without_content_length() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\n\r\nbusy";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.body, "busy");
        assert!(!response.is_success());
    }

    #[test]
    fn content_length_inside_utf8_char_does_not_panic() {
        // "日本" is 6 bytes; a bogus Content-Length of 4 lands mid-char.
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n日本".as_bytes();
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "日本");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
