//! Minimal HTTP/1.1 message framing over blocking streams.
//!
//! Enough of RFC 9112 for a JSON API: request-line + headers +
//! `Content-Length` bodies (no chunked transfer, no multipart), responses
//! with explicit lengths, and keep-alive by default (HTTP/1.1 semantics:
//! a connection closes when either side says `Connection: close`).
//! Hard limits on header and body size protect the worker pool from
//! hostile or broken clients.

use std::io::{self, BufRead, Write};

/// Maximum accepted size of the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, in bytes (CSV ingest is the large case).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (uppercased by the client as sent: `GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query string, undecoded).
    pub path: String,
    /// Protocol version from the request line (`HTTP/1.0` or `HTTP/1.1`).
    pub version: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value under `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should close after this exchange: an
    /// explicit `Connection: close`, or HTTP/1.0 semantics (default
    /// close; 1.0 clients typically read the body to EOF) without an
    /// explicit keep-alive.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.version == "HTTP/1.0",
        }
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before sending anything (normal keep-alive end).
    Eof,
    /// Transport failure.
    Io(io::Error),
    /// The bytes did not form an acceptable request; the payload is a
    /// `(status, message)` to answer with before closing.
    Malformed(u16, String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from `stream`.
pub fn read_request(stream: &mut impl BufRead) -> Result<HttpRequest, ReadError> {
    let request_line = read_head_line(stream, true)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(400, "malformed request line".into()));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(
            505,
            format!("unsupported version {version}"),
        ));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(stream, false)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed(431, "headers too large".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(400, "malformed header".into()));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let mut request = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    };
    // Reject Transfer-Encoding outright — even alongside Content-Length.
    // Framing by Content-Length while chunked framing bytes sit in the
    // stream would desync keep-alive parsing (request-smuggling class).
    if request.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed(
            501,
            "transfer encodings not supported".into(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| ReadError::Malformed(400, "bad Content-Length".into()))?;
        if len > MAX_BODY_BYTES {
            return Err(ReadError::Malformed(413, "body too large".into()));
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// Read one CRLF- (or LF-) terminated header line. `at_start` maps clean
/// EOF to [`ReadError::Eof`] (the keep-alive loop's exit).
fn read_head_line(stream: &mut impl BufRead, at_start: bool) -> Result<String, ReadError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                if at_start && line.is_empty() {
                    return Err(ReadError::Eof);
                }
                return Err(ReadError::Malformed(400, "truncated request".into()));
            }
            // lint:allow(no-panic-in-request-path: byte is [0u8; 1] and read returned nonzero, so index 0 is filled)
            _ => match byte[0] {
                b'\n' => break,
                b'\r' => {}
                b => {
                    if line.len() >= MAX_HEAD_BYTES {
                        return Err(ReadError::Malformed(431, "header line too long".into()));
                    }
                    line.push(b);
                }
            },
        }
    }
    String::from_utf8(line).map_err(|_| ReadError::Malformed(400, "non-UTF-8 header".into()))
}

/// The canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one `application/json` response — head and body in a single
/// `write_all`, so no partial segment can sit in Nagle's buffer waiting
/// for a delayed ACK while a keep-alive client blocks on the rest.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<HttpRequest, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let request = parse(
            "POST /v1/datasets/county/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/datasets/county/query");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body, b"body");
        assert!(!request.wants_close());
    }

    #[test]
    fn lf_only_lines_and_connection_close() {
        let request = parse("GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.wants_close());
        assert!(request.body.is_empty());
    }

    #[test]
    fn http_10_defaults_to_close() {
        let request = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(request.version, "HTTP/1.0");
        assert!(request.wants_close(), "1.0 default is close");
        let request = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!request.wants_close(), "explicit keep-alive is honored");
        let request = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!request.wants_close(), "1.1 default is keep-alive");
    }

    #[test]
    fn eof_at_start_is_clean_end() {
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn malformed_requests_get_statuses() {
        let cases: [(&str, u16); 5] = [
            ("garbage\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 505),
            ("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            // TE + CL together must be rejected too, not framed by CL.
            (
                "POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
                501,
            ),
        ];
        for (text, expected) in cases {
            match parse(text) {
                Err(ReadError::Malformed(status, _)) => assert_eq!(status, expected, "{text:?}"),
                other => panic!("{text:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_rejected() {
        let text = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(parse(&text), Err(ReadError::Malformed(413, _))));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
