//! A small, dependency-free JSON value type with an encoder and a strict
//! recursive-descent parser.
//!
//! The build environment is offline, so the wire protocol hand-rolls its
//! JSON. The subset is complete for RFC 8259 documents with two deliberate
//! choices:
//!
//! - numbers are `f64` (every protocol integer fits in the 2^53-exact
//!   range), and non-finite floats encode as `null`;
//! - objects preserve insertion order in a `Vec` (stable output, cheap for
//!   the small objects the protocol exchanges).
//!
//! Encoding uses Rust's shortest-round-trip float formatting, so
//! `parse(encode(x))` is bit-identical for finite floats — the property
//! the round-trip test suite pins down.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from any integer that is exact in `f64` (all protocol
    /// counters are).
    pub fn num_usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// An array of strings.
    pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(
            items
                .into_iter()
                .map(|s| Json::Str(s.as_ref().to_string()))
                .collect(),
        )
    }

    /// Object member by key (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives, and values beyond exact `f64` integers).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// JSON has no non-finite numbers; encode them as `null` (documented
/// protocol behavior) and everything else via shortest-round-trip
/// formatting.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc()
        && n.abs() < 9.007_199_254_740_992e15
        && !(n == 0.0 && n.is_sign_negative())
    {
        // Integral values print without a fraction ("3", not "3.0") —
        // pleasant for counters; parses back to the identical f64.
        // lint:allow(no-panic-in-request-path: fmt::Write to String is infallible)
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        // lint:allow(no-panic-in-request-path: fmt::Write to String is infallible)
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                // lint:allow(no-panic-in-request-path: fmt::Write to String is infallible)
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Recursion is one stack
/// frame per level, so an unbounded depth would let a small hostile body
/// (`[[[[…`) overflow a worker thread's stack and abort the process.
// lint:allow(block-grid-literals: JSON nesting depth cap, unrelated to the Gram block grid)
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        // lint:allow(no-panic-in-request-path: pos never passes bytes.len() — every advance is bounds-checked by peek)
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // lint:allow(no-panic-in-request-path: start <= pos <= bytes.len() — the digit loop advances pos only while peek succeeds)
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ascii bytes in number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs encode astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("invalid \\u"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{:?}", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    // lint:allow(no-panic-in-request-path: end is checked against bytes.len() two lines up)
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // Exactly four hex digits — from_str_radix alone would also
        // accept a leading '+', which RFC 8259 does not.
        let mut unit = 0u32;
        // lint:allow(no-panic-in-request-path: pos + 4 <= bytes.len() is checked at function entry)
        for &b in &self.bytes[self.pos..self.pos + 4] {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            unit = unit * 16 + digit;
        }
        self.pos += 4;
        Ok(unit)
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.encode()).expect("reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(3.5),
            Json::Num(1e-12),
            Json::Num(123456789.0),
            Json::Str("".into()),
            Json::Str("plain".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let s = Json::Str("tab\t \"quoted\" back\\slash μ≥π 💡 \n\u{1} née".into());
        assert_eq!(roundtrip(&s), s);
        // And \u escapes (incl. surrogate pair) parse to the same chars.
        assert_eq!(
            Json::parse(r#""\u00b5\ud83d\udca1\u0041""#).unwrap(),
            Json::Str("µ💡A".into())
        );
    }

    #[test]
    fn shortest_float_formatting_roundtrips_bits() {
        for f in [
            0.1,
            2.0 / 3.0,
            1.05,
            -0.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
        ] {
            let v = roundtrip(&Json::Num(f));
            assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj([
            ("v", Json::Num(1.0)),
            ("op", Json::str("run_query")),
            (
                "query",
                Json::obj([
                    ("target", Json::str("base_salary")),
                    ("alpha", Json::Num(0.7)),
                    ("attrs", Json::str_arr(["edu", "exp"])),
                    ("top_k", Json::Null),
                ]),
            ),
            (
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Bool(false)]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(
            v.get("query").unwrap().get("target").unwrap().as_str(),
            Some("base_salary")
        );
        assert_eq!(v.get("v").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn malformed_documents_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "01x",
            "{} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "nan",
            r#""\u+041""#,
            r#""\u 041""#,
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn hostile_nesting_rejected_without_overflow() {
        // Far past MAX_DEPTH but far below any stack limit concern once
        // the guard is in place.
        let deep = "[".repeat(60_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let deep_obj = "{\"a\":".repeat(60_000);
        assert!(Json::parse(&deep_obj).is_err());
        // At the boundary: MAX_DEPTH levels parse fine.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("3".into()).as_usize(), None);
    }
}
