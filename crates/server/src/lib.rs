//! # charles-server
//!
//! The multi-tenant serving layer for ChARLES: a dependency-free JSON
//! wire protocol and a threaded `std::net` HTTP/1.1 front end over
//! [`charles_core::SessionManager`]'s cached session plane.
//!
//! The crate has three layers, each usable on its own:
//!
//! - [`json`] — a hand-rolled JSON value/parser/encoder (the build
//!   environment is offline; no serde);
//! - [`proto`] — the versioned wire protocol: [`proto::Request`]
//!   envelopes, serializable result views ([`proto::WireQueryResult`],
//!   [`proto::RankedSummary`], [`proto::WireDatasetStats`]), and typed
//!   [`proto::ErrorEnvelope`]s;
//! - [`server`] — the front end: bounded worker pool, REST-style routes
//!   plus `/v1/rpc`, backpressure via `503`, graceful shutdown.
//!
//! [`client`] adds the few lines of raw-`TcpStream` HTTP needed to drive
//! a server from examples, benches, and smoke tests, and [`remote`] turns
//! servers into **shard workers**: [`RemoteExecutor`] is a
//! coordinator-side `charles_core::ShardExecutor` that fans block-range
//! statistic requests across `charles-worker` processes and merges them
//! bit-identically to the in-process path, with re-dispatch on worker
//! failure.
//!
//! ```no_run
//! use charles_core::{ManagerConfig, SessionManager};
//! use charles_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
//! // manager.register_csv("county", "v2016.csv", "v2017.csv", None);
//! let mut server = Server::start(manager, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! // POST /v1/datasets/county/query  {"target": "base_salary"}
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod proto;
pub mod remote;
pub mod server;

pub use client::{http_request, HttpClient, HttpResponse};
pub use json::{Json, JsonError};
pub use proto::{
    ErrorEnvelope, ProtoError, RankedSummary, Request, WireColumnMoments, WireDatasetStats,
    WireGramPartial, WireQuery, WireQueryResult, WireSignalSlice, PROTOCOL_VERSION,
};
pub use remote::{remote_dataset_spec, upload_csv, RemoteExecutor};
pub use server::{dispatch, Server, ServerConfig};
