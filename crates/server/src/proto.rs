//! The versioned wire protocol: typed requests, serializable views of
//! query results, and error envelopes.
//!
//! Every request body is a JSON object carrying the protocol version
//! (`"v": 1`) and an operation tag (`"op"`); the HTTP front end also
//! derives the same [`Request`] values from its REST-style routes, so both
//! entry points share one dispatch path. Responses are plain JSON
//! documents ([`WireQueryResult`], [`WireDatasetStats`], …); failures are
//! [`ErrorEnvelope`]s with a stable machine-readable `code`.
//!
//! Encode→decode is identity for every type here (pinned by the proptest
//! suite in `tests/proto_roundtrip.rs`), including floats, unicode
//! attribute names, and strings needing escapes.

use crate::json::{Json, JsonError};
use charles_core::{CharlesError, DatasetStats, Query, QueryError, QueryResult, SessionStats};
use charles_numerics::ols::{ColumnMoments, GramBlock, GramPartial};

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: usize = 1;

/// A decode failure: the document was valid JSON but not a valid protocol
/// message (or not valid JSON at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was malformed.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> Self {
        ProtoError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::new(e.to_string())
    }
}

type Decode<T> = Result<T, ProtoError>;

fn need<'a>(obj: &'a Json, key: &str) -> Decode<&'a Json> {
    obj.get(key)
        .ok_or_else(|| ProtoError::new(format!("missing field {key:?}")))
}

fn need_str(obj: &Json, key: &str) -> Decode<String> {
    need(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a string")))
}

fn need_f64(obj: &Json, key: &str) -> Decode<f64> {
    need(obj, key)?
        .as_f64()
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a number")))
}

fn need_usize(obj: &Json, key: &str) -> Decode<usize> {
    need(obj, key)?
        .as_usize()
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a non-negative integer")))
}

fn opt_str_arr(obj: &Json, key: &str) -> Decode<Option<Vec<String>>> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_arr()
            .map(|items| {
                items
                    .iter()
                    .map(|s| {
                        s.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::new(format!("field {key:?} must hold strings"))
                        })
                    })
                    .collect::<Decode<Vec<String>>>()
            })
            .transpose()?
            .map(Some)
            .ok_or_else(|| ProtoError::new(format!("field {key:?} must be an array"))),
    }
}

fn str_arr(obj: &Json, key: &str) -> Decode<Vec<String>> {
    opt_str_arr(obj, key)?.ok_or_else(|| ProtoError::new(format!("missing array field {key:?}")))
}

fn opt_to_json<T>(value: &Option<T>, f: impl Fn(&T) -> Json) -> Json {
    value.as_ref().map_or(Json::Null, f)
}

// ---- Bit-exact float transport ----------------------------------------
//
// Shard sufficient statistics must merge to the *same bits* the
// coordinator would have computed itself, so their floats cross the wire
// as `f64::to_bits` rendered in fixed-width hex — immune to any decimal
// formatting subtlety and able to carry the non-finite values the
// phase-A `finite` flag reports on (JSON numbers cannot encode NaN/∞).

/// Encode one float as its 16-hex-digit bit pattern.
fn f64_bits(v: f64) -> Json {
    Json::str(format!("{:016x}", v.to_bits()))
}

/// Decode one bit-pattern float.
fn f64_from_bits(value: &Json) -> Decode<f64> {
    let text = value
        .as_str()
        .ok_or_else(|| ProtoError::new("float bits must be a hex string"))?;
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| ProtoError::new(format!("malformed float bits {text:?}")))
}

/// Encode one *human-facing* float (scores, α, timings) as a plain JSON
/// number. This is the single sanctioned escape hatch from the hex-bits
/// transport: Rust's `{}` float formatting is shortest-round-trip, so a
/// finite value parses back to the identical f64 — exact in practice,
/// while staying readable in `curl` output and dashboards. Everything on
/// the shard-statistics path must keep using [`f64_bits`].
fn human_f64(v: f64) -> Json {
    // lint:allow(wire-float-exactness: shortest-round-trip decimal, read-back exact, human-facing fields only)
    Json::Num(v)
}

/// Encode a float slice as bit patterns.
fn f64_bits_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| f64_bits(v)).collect())
}

/// Decode an array of bit-pattern floats under `key`.
fn f64_bits_field(obj: &Json, key: &str) -> Decode<Vec<f64>> {
    need(obj, key)?
        .as_arr()
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be an array")))?
        .iter()
        .map(f64_from_bits)
        .collect()
}

/// The wire form of one shard's change-signal slice
/// ([`charles_core::SignalSlice`]): Δ and relative Δ as float bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSignalSlice {
    /// Absolute per-row change over the requested range.
    pub delta: Vec<f64>,
    /// Relative per-row change over the requested range.
    pub rel_delta: Vec<f64>,
}

impl WireSignalSlice {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delta", f64_bits_arr(&self.delta)),
            ("rel_delta", f64_bits_arr(&self.rel_delta)),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        Ok(WireSignalSlice {
            delta: f64_bits_field(value, "delta")?,
            rel_delta: f64_bits_field(value, "rel_delta")?,
        })
    }
}

/// The wire form of phase-A [`ColumnMoments`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireColumnMoments {
    /// The statistics, bit-exact.
    pub moments: ColumnMoments,
}

impl WireColumnMoments {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rows", Json::num_usize(self.moments.rows)),
            ("max_abs", f64_bits_arr(&self.moments.max_abs)),
            ("finite", Json::Bool(self.moments.finite)),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        Ok(WireColumnMoments {
            moments: ColumnMoments {
                rows: need_usize(value, "rows")?,
                max_abs: f64_bits_field(value, "max_abs")?,
                finite: need(value, "finite")?
                    .as_bool()
                    .ok_or_else(|| ProtoError::new("field \"finite\" must be a boolean"))?,
            },
        })
    }
}

/// The wire form of phase-B [`GramPartial`]: the absolute first block
/// index plus each canonical block's `XᵀX`/`Xᵀy` sums as float bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGramPartial {
    /// The statistics, bit-exact.
    pub partial: GramPartial,
}

impl WireGramPartial {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("first_block", Json::num_usize(self.partial.first_block)),
            (
                "blocks",
                Json::Arr(
                    self.partial
                        .blocks()
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("xtx", f64_bits_arr(b.xtx())),
                                ("xty", f64_bits_arr(b.xty())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        let blocks = need(value, "blocks")?
            .as_arr()
            .ok_or_else(|| ProtoError::new("field \"blocks\" must be an array"))?
            .iter()
            .map(|b| {
                Ok(GramBlock::new(
                    f64_bits_field(b, "xtx")?,
                    f64_bits_field(b, "xty")?,
                ))
            })
            .collect::<Decode<Vec<_>>>()?;
        Ok(WireGramPartial {
            partial: GramPartial::new(need_usize(value, "first_block")?, blocks),
        })
    }
}

/// The wire form of a [`Query`]: what to explain and optional overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// The changed attribute to explain.
    pub target: String,
    /// Accuracy-weight override (`None` = session default).
    pub alpha: Option<f64>,
    /// Condition-attribute shortlist override.
    pub condition_attrs: Option<Vec<String>>,
    /// Transformation-attribute shortlist override.
    pub transform_attrs: Option<Vec<String>>,
    /// Ranked-summary budget override.
    pub top_k: Option<usize>,
}

impl WireQuery {
    /// A wire query for `target` with every override unset.
    pub fn new(target: impl Into<String>) -> Self {
        WireQuery {
            target: target.into(),
            alpha: None,
            condition_attrs: None,
            transform_attrs: None,
            top_k: None,
        }
    }

    /// Convert into the engine's [`Query`].
    pub fn to_query(&self) -> Query {
        let mut query = Query::new(&self.target);
        query.alpha = self.alpha;
        query.condition_attrs = self.condition_attrs.clone();
        query.transform_attrs = self.transform_attrs.clone();
        query.top_k = self.top_k;
        query
    }

    /// The wire form of an engine [`Query`] (config overrides, which are
    /// not wire-expressible, are dropped).
    pub fn from_query(query: &Query) -> Self {
        WireQuery {
            target: query.target.clone(),
            alpha: query.alpha,
            condition_attrs: query.condition_attrs.clone(),
            transform_attrs: query.transform_attrs.clone(),
            top_k: query.top_k,
        }
    }

    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("target", Json::str(&self.target)),
            ("alpha", opt_to_json(&self.alpha, |a| human_f64(*a))),
            (
                "condition_attrs",
                opt_to_json(&self.condition_attrs, |a| Json::str_arr(a)),
            ),
            (
                "transform_attrs",
                opt_to_json(&self.transform_attrs, |a| Json::str_arr(a)),
            ),
            ("top_k", opt_to_json(&self.top_k, |k| Json::num_usize(*k))),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        Ok(WireQuery {
            target: need_str(value, "target")?,
            alpha: match value.get("alpha") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| ProtoError::new("field \"alpha\" must be a number"))?,
                ),
            },
            condition_attrs: opt_str_arr(value, "condition_attrs")?,
            transform_attrs: opt_str_arr(value, "transform_attrs")?,
            top_k: match value.get("top_k") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| {
                    ProtoError::new("field \"top_k\" must be a non-negative integer")
                })?),
            },
        })
    }
}

/// One ranked change summary, rendered for the wire: scores plus each
/// conditional transformation as its canonical display string.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSummary {
    /// 1-based rank in the result.
    pub rank: usize,
    /// Combined score `α·accuracy + (1−α)·interpretability`.
    pub score: f64,
    /// Accuracy sub-score.
    pub accuracy: f64,
    /// Interpretability sub-score.
    pub interpretability: f64,
    /// Conditional transformations, rendered (`condition → transformation`
    /// plus coverage), in partition order.
    pub cts: Vec<String>,
    /// Condition attributes the summary's search used.
    pub condition_attrs: Vec<String>,
    /// Transformation attributes the summary's search used.
    pub transform_attrs: Vec<String>,
    /// Fraction of rows covered by non-identity CTs.
    pub changed_coverage: f64,
}

impl RankedSummary {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::num_usize(self.rank)),
            ("score", human_f64(self.score)),
            ("accuracy", human_f64(self.accuracy)),
            ("interpretability", human_f64(self.interpretability)),
            ("cts", Json::str_arr(&self.cts)),
            ("condition_attrs", Json::str_arr(&self.condition_attrs)),
            ("transform_attrs", Json::str_arr(&self.transform_attrs)),
            ("changed_coverage", human_f64(self.changed_coverage)),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        Ok(RankedSummary {
            rank: need_usize(value, "rank")?,
            score: need_f64(value, "score")?,
            accuracy: need_f64(value, "accuracy")?,
            interpretability: need_f64(value, "interpretability")?,
            cts: str_arr(value, "cts")?,
            condition_attrs: str_arr(value, "condition_attrs")?,
            transform_attrs: str_arr(value, "transform_attrs")?,
            changed_coverage: need_f64(value, "changed_coverage")?,
        })
    }
}

/// The wire form of a [`QueryResult`]: the resolved α, search bookkeeping,
/// and the ranked summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQueryResult {
    /// Target attribute the result explains.
    pub target: String,
    /// The α the summaries are scored under.
    pub alpha: f64,
    /// Wall-clock milliseconds the server spent answering.
    pub elapsed_ms: f64,
    /// Candidates enumerated.
    pub candidates: usize,
    /// Candidates that produced a summary.
    pub evaluated: usize,
    /// Distinct summaries after deduplication.
    pub distinct: usize,
    /// Ranked summaries, best first.
    pub summaries: Vec<RankedSummary>,
}

impl WireQueryResult {
    /// Render an engine result for the wire.
    pub fn from_result(result: &QueryResult) -> Self {
        WireQueryResult {
            target: result.query.target.clone(),
            alpha: result.alpha,
            elapsed_ms: result.elapsed.as_secs_f64() * 1e3,
            candidates: result.stats.candidates,
            evaluated: result.stats.evaluated,
            distinct: result.stats.distinct,
            summaries: result
                .summaries
                .iter()
                .enumerate()
                .map(|(i, s)| RankedSummary {
                    rank: i + 1,
                    score: s.scores.score,
                    accuracy: s.scores.accuracy,
                    interpretability: s.scores.interpretability,
                    cts: s.cts.iter().map(|ct| ct.to_string()).collect(),
                    condition_attrs: s.condition_attrs.clone(),
                    transform_attrs: s.transform_attrs.clone(),
                    changed_coverage: s.changed_coverage(),
                })
                .collect(),
        }
    }

    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("target", Json::str(&self.target)),
            ("alpha", human_f64(self.alpha)),
            ("elapsed_ms", human_f64(self.elapsed_ms)),
            ("candidates", Json::num_usize(self.candidates)),
            ("evaluated", Json::num_usize(self.evaluated)),
            ("distinct", Json::num_usize(self.distinct)),
            (
                "summaries",
                Json::Arr(self.summaries.iter().map(RankedSummary::to_json).collect()),
            ),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        let summaries = need(value, "summaries")?
            .as_arr()
            .ok_or_else(|| ProtoError::new("field \"summaries\" must be an array"))?
            .iter()
            .map(RankedSummary::from_json)
            .collect::<Decode<Vec<_>>>()?;
        Ok(WireQueryResult {
            target: need_str(value, "target")?,
            alpha: need_f64(value, "alpha")?,
            elapsed_ms: need_f64(value, "elapsed_ms")?,
            candidates: need_usize(value, "candidates")?,
            evaluated: need_usize(value, "evaluated")?,
            distinct: need_usize(value, "distinct")?,
            summaries,
        })
    }
}

/// The wire form of one dataset's registry entry plus (when resident) its
/// session's work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDatasetStats {
    /// Registry bookkeeping ([`DatasetStats`]).
    pub dataset: DatasetStats,
    /// The resident session's monotone work counters, if open.
    pub session: Option<SessionStats>,
}

impl WireDatasetStats {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        let d = &self.dataset;
        Json::obj([
            ("name", Json::str(&d.name)),
            ("resident", Json::Bool(d.resident)),
            ("opens", Json::num_usize(d.opens)),
            ("hits", Json::num_usize(d.hits)),
            ("evictions", Json::num_usize(d.evictions)),
            ("approx_bytes", Json::num_usize(d.approx_bytes)),
            ("last_used_tick", Json::num_usize(d.last_used_tick as usize)),
            ("shards", Json::num_usize(d.shards)),
            ("sealed", Json::Bool(d.sealed)),
            (
                "session",
                opt_to_json(&self.session, |s| {
                    Json::obj([
                        ("columns_extracted", Json::num_usize(s.columns_extracted)),
                        (
                            "target_planes_built",
                            Json::num_usize(s.target_planes_built),
                        ),
                        (
                            "setup_reports_computed",
                            Json::num_usize(s.setup_reports_computed),
                        ),
                        (
                            "global_fits_computed",
                            Json::num_usize(s.global_fits_computed),
                        ),
                        ("labelings_computed", Json::num_usize(s.labelings_computed)),
                        (
                            "candidates_computed",
                            Json::num_usize(s.candidates_computed),
                        ),
                    ])
                }),
            ),
        ])
    }

    /// Decode from a JSON value.
    pub fn from_json(value: &Json) -> Decode<Self> {
        let session = match value.get("session") {
            None | Some(Json::Null) => None,
            Some(s) => Some(SessionStats {
                columns_extracted: need_usize(s, "columns_extracted")?,
                target_planes_built: need_usize(s, "target_planes_built")?,
                setup_reports_computed: need_usize(s, "setup_reports_computed")?,
                global_fits_computed: need_usize(s, "global_fits_computed")?,
                labelings_computed: need_usize(s, "labelings_computed")?,
                candidates_computed: need_usize(s, "candidates_computed")?,
            }),
        };
        Ok(WireDatasetStats {
            dataset: DatasetStats {
                name: need_str(value, "name")?,
                resident: need(value, "resident")?
                    .as_bool()
                    .ok_or_else(|| ProtoError::new("field \"resident\" must be a boolean"))?,
                opens: need_usize(value, "opens")?,
                hits: need_usize(value, "hits")?,
                evictions: need_usize(value, "evictions")?,
                approx_bytes: need_usize(value, "approx_bytes")?,
                last_used_tick: need_usize(value, "last_used_tick")? as u64,
                // Absent on pre-sharding peers: default to unsharded.
                shards: value.get("shards").and_then(Json::as_usize).unwrap_or(1),
                // Absent on pre-compression peers: default to unsealed.
                sealed: value
                    .get("sealed")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            },
            session,
        })
    }
}

/// A versioned protocol request — the single dispatch currency shared by
/// the REST routes and the `/v1/rpc` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer one query against a named dataset.
    RunQuery {
        /// Registered dataset name.
        dataset: String,
        /// The question.
        query: WireQuery,
    },
    /// Answer several queries over the dataset's one shared plane.
    RunMulti {
        /// Registered dataset name.
        dataset: String,
        /// The questions, answered in order.
        queries: Vec<WireQuery>,
    },
    /// Run one query, then re-score it under each requested α.
    SweepAlpha {
        /// Registered dataset name.
        dataset: String,
        /// The base question.
        query: WireQuery,
        /// The α values to sweep, in order.
        alphas: Vec<f64>,
    },
    /// List the dataset's changed numeric attributes (candidate targets).
    ListTargets {
        /// Registered dataset name.
        dataset: String,
    },
    /// Registry + session statistics for one dataset (`Some`) or all
    /// (`None`).
    Stats {
        /// Dataset name, or `None` for everything.
        dataset: Option<String>,
    },
    /// Ingest two CSV documents as a named dataset.
    LoadCsv {
        /// Name to register under (replaces any previous registration).
        dataset: String,
        /// CSV text of the earlier snapshot.
        source_csv: String,
        /// CSV text of the later snapshot.
        target_csv: String,
        /// Key attribute to align on (`None` = declared key/positional).
        key: Option<String>,
    },
    /// Worker role: the change-signal slice of one block-aligned row
    /// range (`[start, start + len)`) of a dataset's target attribute.
    ShardSignals {
        /// Registered dataset name.
        dataset: String,
        /// Target attribute.
        target: String,
        /// First row of the range (must sit on the Gram block grid).
        start: usize,
        /// Row count of the range.
        len: usize,
    },
    /// Worker role: phase-A column moments of one block-aligned row range.
    ShardMoments {
        /// Registered dataset name.
        dataset: String,
        /// Target attribute.
        target: String,
        /// Transformation-attribute subset, in subset order.
        tran_attrs: Vec<String>,
        /// First row of the range.
        start: usize,
        /// Row count of the range.
        len: usize,
    },
    /// Worker role: phase-B blocked Gram statistics of one block-aligned
    /// row range, under coordinator-derived conditioning scales.
    ShardGram {
        /// Registered dataset name.
        dataset: String,
        /// Target attribute.
        target: String,
        /// Transformation-attribute subset, in subset order.
        tran_attrs: Vec<String>,
        /// Conditioning scales from the merged phase-A moments (bit-exact
        /// on the wire — the fit divides by them).
        scales: Vec<f64>,
        /// First row of the range.
        start: usize,
        /// Row count of the range.
        len: usize,
    },
}

impl Request {
    /// The operation tag carried on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::RunQuery { .. } => "run_query",
            Request::RunMulti { .. } => "run_multi",
            Request::SweepAlpha { .. } => "sweep_alpha",
            Request::ListTargets { .. } => "list_targets",
            Request::Stats { .. } => "stats",
            Request::LoadCsv { .. } => "load_csv",
            Request::ShardSignals { .. } => "shard_signals",
            Request::ShardMoments { .. } => "shard_moments",
            Request::ShardGram { .. } => "shard_gram",
        }
    }

    /// Encode as a versioned JSON envelope.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v".to_string(), Json::num_usize(PROTOCOL_VERSION)),
            ("op".to_string(), Json::str(self.op())),
        ];
        match self {
            Request::RunQuery { dataset, query } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("query".into(), query.to_json()));
            }
            Request::RunMulti { dataset, queries } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push((
                    "queries".into(),
                    Json::Arr(queries.iter().map(WireQuery::to_json).collect()),
                ));
            }
            Request::SweepAlpha {
                dataset,
                query,
                alphas,
            } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("query".into(), query.to_json()));
                pairs.push((
                    "alphas".into(),
                    Json::Arr(alphas.iter().map(|&a| human_f64(a)).collect()),
                ));
            }
            Request::ListTargets { dataset } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
            }
            Request::Stats { dataset } => {
                pairs.push((
                    "dataset".into(),
                    opt_to_json(dataset, |d| Json::str(d.clone())),
                ));
            }
            Request::LoadCsv {
                dataset,
                source_csv,
                target_csv,
                key,
            } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("source_csv".into(), Json::str(source_csv)));
                pairs.push(("target_csv".into(), Json::str(target_csv)));
                pairs.push(("key".into(), opt_to_json(key, |k| Json::str(k.clone()))));
            }
            Request::ShardSignals {
                dataset,
                target,
                start,
                len,
            } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("target".into(), Json::str(target)));
                pairs.push(("start".into(), Json::num_usize(*start)));
                pairs.push(("len".into(), Json::num_usize(*len)));
            }
            Request::ShardMoments {
                dataset,
                target,
                tran_attrs,
                start,
                len,
            } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("target".into(), Json::str(target)));
                pairs.push(("tran_attrs".into(), Json::str_arr(tran_attrs)));
                pairs.push(("start".into(), Json::num_usize(*start)));
                pairs.push(("len".into(), Json::num_usize(*len)));
            }
            Request::ShardGram {
                dataset,
                target,
                tran_attrs,
                scales,
                start,
                len,
            } => {
                pairs.push(("dataset".into(), Json::str(dataset)));
                pairs.push(("target".into(), Json::str(target)));
                pairs.push(("tran_attrs".into(), Json::str_arr(tran_attrs)));
                pairs.push(("scales".into(), f64_bits_arr(scales)));
                pairs.push(("start".into(), Json::num_usize(*start)));
                pairs.push(("len".into(), Json::num_usize(*len)));
            }
        }
        Json::Obj(pairs)
    }

    /// Decode a versioned JSON envelope; rejects unknown versions and ops.
    pub fn from_json(value: &Json) -> Decode<Self> {
        let v = need_usize(value, "v")?;
        if v != PROTOCOL_VERSION {
            return Err(ProtoError::new(format!(
                "unsupported protocol version {v} (this server speaks {PROTOCOL_VERSION})"
            )));
        }
        let op = need_str(value, "op")?;
        match op.as_str() {
            "run_query" => Ok(Request::RunQuery {
                dataset: need_str(value, "dataset")?,
                query: WireQuery::from_json(need(value, "query")?)?,
            }),
            "run_multi" => Ok(Request::RunMulti {
                dataset: need_str(value, "dataset")?,
                queries: need(value, "queries")?
                    .as_arr()
                    .ok_or_else(|| ProtoError::new("field \"queries\" must be an array"))?
                    .iter()
                    .map(WireQuery::from_json)
                    .collect::<Decode<Vec<_>>>()?,
            }),
            "sweep_alpha" => Ok(Request::SweepAlpha {
                dataset: need_str(value, "dataset")?,
                query: WireQuery::from_json(need(value, "query")?)?,
                alphas: need(value, "alphas")?
                    .as_arr()
                    .ok_or_else(|| ProtoError::new("field \"alphas\" must be an array"))?
                    .iter()
                    .map(|a| {
                        a.as_f64()
                            .ok_or_else(|| ProtoError::new("field \"alphas\" must hold numbers"))
                    })
                    .collect::<Decode<Vec<_>>>()?,
            }),
            "list_targets" => Ok(Request::ListTargets {
                dataset: need_str(value, "dataset")?,
            }),
            "stats" => {
                Ok(Request::Stats {
                    dataset: match value.get("dataset") {
                        None | Some(Json::Null) => None,
                        Some(d) => Some(d.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::new("field \"dataset\" must be a string")
                        })?),
                    },
                })
            }
            "shard_signals" => Ok(Request::ShardSignals {
                dataset: need_str(value, "dataset")?,
                target: need_str(value, "target")?,
                start: need_usize(value, "start")?,
                len: need_usize(value, "len")?,
            }),
            "shard_moments" => Ok(Request::ShardMoments {
                dataset: need_str(value, "dataset")?,
                target: need_str(value, "target")?,
                tran_attrs: str_arr(value, "tran_attrs")?,
                start: need_usize(value, "start")?,
                len: need_usize(value, "len")?,
            }),
            "shard_gram" => Ok(Request::ShardGram {
                dataset: need_str(value, "dataset")?,
                target: need_str(value, "target")?,
                tran_attrs: str_arr(value, "tran_attrs")?,
                scales: f64_bits_field(value, "scales")?,
                start: need_usize(value, "start")?,
                len: need_usize(value, "len")?,
            }),
            "load_csv" => Ok(Request::LoadCsv {
                dataset: need_str(value, "dataset")?,
                source_csv: need_str(value, "source_csv")?,
                target_csv: need_str(value, "target_csv")?,
                key: match value.get("key") {
                    None | Some(Json::Null) => None,
                    Some(k) => Some(
                        k.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ProtoError::new("field \"key\" must be a string"))?,
                    ),
                },
            }),
            other => Err(ProtoError::new(format!("unknown op {other:?}"))),
        }
    }
}

/// A typed error response: a stable machine-readable `code` plus a human
/// message, wrapped as `{"error": {...}}` on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEnvelope {
    /// Stable error code (e.g. `"unknown_dataset"`, `"bad_query"`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorEnvelope {
    /// Build an envelope.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        ErrorEnvelope {
            code: code.into(),
            message: message.into(),
        }
    }

    /// Map an engine error to `(HTTP status, envelope)`.
    pub fn from_charles(e: &CharlesError) -> (u16, ErrorEnvelope) {
        let (status, code) = match e {
            CharlesError::UnknownDataset(_) => (404, "unknown_dataset"),
            CharlesError::Query(QueryError::UnknownTarget { .. }) => (404, "unknown_target"),
            CharlesError::Query(_) => (400, "bad_query"),
            CharlesError::BadConfig(_) => (400, "bad_config"),
            CharlesError::BadTargetAttribute(_) => (400, "bad_query"),
            CharlesError::NoCandidates(_) => (422, "no_candidates"),
            CharlesError::Relation(_) => (400, "bad_data"),
            CharlesError::Numerics(_) | CharlesError::Cluster(_) => (500, "internal"),
            // The coordinator could not complete a distributed query: a
            // worker went away and no live worker could take over. Server
            // state, not a client mistake.
            CharlesError::Distributed(_) => (503, "worker_unavailable"),
        };
        (status, ErrorEnvelope::new(code, e.to_string()))
    }

    /// Encode as the wire's `{"error": {...}}` document.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::str(&self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
    }

    /// Decode from the wire document.
    pub fn from_json(value: &Json) -> Decode<Self> {
        let inner = need(value, "error")?;
        Ok(ErrorEnvelope {
            code: need_str(inner, "code")?,
            message: need_str(inner, "message")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelopes_roundtrip() {
        let requests = [
            Request::RunQuery {
                dataset: "county".into(),
                query: WireQuery {
                    target: "base_salary".into(),
                    alpha: Some(0.7),
                    condition_attrs: Some(vec!["department".into(), "grade".into()]),
                    transform_attrs: None,
                    top_k: Some(5),
                },
            },
            Request::RunMulti {
                dataset: "county".into(),
                queries: vec![
                    WireQuery::new("base_salary"),
                    WireQuery::new("overtime_pay"),
                ],
            },
            Request::SweepAlpha {
                dataset: "μ-data \"quoted\"".into(),
                query: WireQuery::new("bonus"),
                alphas: vec![0.0, 0.25, 1.0],
            },
            Request::ListTargets {
                dataset: "county".into(),
            },
            Request::Stats { dataset: None },
            Request::Stats {
                dataset: Some("county".into()),
            },
            Request::LoadCsv {
                dataset: "payroll".into(),
                source_csv: "name,pay\nAnne,\"1,000\"\n".into(),
                target_csv: "name,pay\nAnne,1100\n".into(),
                key: Some("name".into()),
            },
            Request::ShardSignals {
                dataset: "county".into(),
                target: "base_salary".into(),
                start: 128,
                len: 256,
            },
            Request::ShardMoments {
                dataset: "county".into(),
                target: "base_salary".into(),
                tran_attrs: vec!["base_salary".into(), "overtime_pay".into()],
                start: 0,
                len: 128,
            },
            Request::ShardGram {
                dataset: "county".into(),
                target: "base_salary".into(),
                tran_attrs: vec!["base_salary".into()],
                scales: vec![123_456.789, 1.0, f64::MIN_POSITIVE, 1.0 / 3.0],
                start: 384,
                len: 93,
            },
        ];
        for request in requests {
            let encoded = request.to_json().encode();
            let decoded = Request::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, request, "{encoded}");
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let doc = Json::parse(r#"{"v":2,"op":"stats"}"#).unwrap();
        let err = Request::from_json(&doc).unwrap_err();
        assert!(err.message.contains("unsupported protocol version"));
        let doc = Json::parse(r#"{"op":"stats"}"#).unwrap();
        assert!(Request::from_json(&doc).is_err(), "missing v must fail");
        let doc = Json::parse(r#"{"v":1,"op":"fly"}"#).unwrap();
        assert!(Request::from_json(&doc)
            .unwrap_err()
            .message
            .contains("unknown op"));
    }

    #[test]
    fn error_envelope_roundtrip_and_mapping() {
        let (status, envelope) =
            ErrorEnvelope::from_charles(&CharlesError::UnknownDataset("x".into()));
        assert_eq!(status, 404);
        assert_eq!(envelope.code, "unknown_dataset");
        let reparsed =
            ErrorEnvelope::from_json(&Json::parse(&envelope.to_json().encode()).unwrap()).unwrap();
        assert_eq!(reparsed, envelope);

        let (status, envelope) = ErrorEnvelope::from_charles(&CharlesError::Query(
            charles_core::QueryError::EmptyTransformShortlist,
        ));
        assert_eq!((status, envelope.code.as_str()), (400, "bad_query"));
        let (status, envelope) = ErrorEnvelope::from_charles(&CharlesError::Query(
            charles_core::QueryError::UnknownTarget { name: "x".into() },
        ));
        assert_eq!((status, envelope.code.as_str()), (404, "unknown_target"));
    }

    #[test]
    fn dataset_stats_roundtrip_with_shards() {
        let stats = WireDatasetStats {
            dataset: DatasetStats {
                name: "county".into(),
                resident: true,
                opens: 3,
                hits: 17,
                evictions: 2,
                approx_bytes: 123_456,
                last_used_tick: 42,
                shards: 4,
                sealed: true,
            },
            session: Some(SessionStats {
                columns_extracted: 5,
                target_planes_built: 1,
                setup_reports_computed: 1,
                global_fits_computed: 9,
                labelings_computed: 12,
                candidates_computed: 40,
            }),
        };
        let encoded = stats.to_json().encode();
        assert!(encoded.contains("\"shards\":4"), "{encoded}");
        assert!(encoded.contains("\"sealed\":true"), "{encoded}");
        let decoded = WireDatasetStats::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, stats);
        // Documents from pre-sharding / pre-compression peers (no
        // "shards" or "sealed" key) decode as unsharded and unsealed.
        let legacy = Json::parse(
            r#"{"name":"x","resident":false,"opens":0,"hits":0,"evictions":0,"approx_bytes":0,"last_used_tick":0,"session":null}"#,
        )
        .unwrap();
        let legacy = WireDatasetStats::from_json(&legacy).unwrap().dataset;
        assert_eq!(legacy.shards, 1);
        assert!(!legacy.sealed);
    }

    #[test]
    fn shard_statistics_roundtrip_bit_exactly() {
        // The stat payloads must survive the wire to the last bit,
        // including values JSON numbers cannot carry (∞ from an
        // overflowing product, NaN in a max_abs of poisoned data).
        let moments = WireColumnMoments {
            moments: ColumnMoments {
                rows: 4_096,
                max_abs: vec![0.0, -0.0, 1.0 / 3.0, f64::INFINITY, f64::NAN, 1.5e308],
                finite: false,
            },
        };
        let encoded = moments.to_json().encode();
        let decoded = WireColumnMoments::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.moments.rows, 4_096);
        assert!(!decoded.moments.finite);
        for (a, b) in decoded
            .moments
            .max_abs
            .iter()
            .zip(moments.moments.max_abs.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{encoded}");
        }

        let partial = WireGramPartial {
            partial: GramPartial::new(
                7,
                vec![
                    GramBlock::new(vec![1.0, 0.1 + 0.2, -0.0, 4.0], vec![1e-300, 2.0]),
                    GramBlock::new(vec![0.0; 4], vec![f64::MAX, f64::MIN_POSITIVE]),
                ],
            ),
        };
        let encoded = partial.to_json().encode();
        let decoded = WireGramPartial::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.partial, partial.partial);

        let slice = WireSignalSlice {
            delta: vec![0.30000000000000004, -1.5e-320],
            rel_delta: vec![f64::NEG_INFINITY, 0.0],
        };
        let encoded = slice.to_json().encode();
        let decoded = WireSignalSlice::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        for (a, b) in decoded.delta.iter().zip(slice.delta.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in decoded.rel_delta.iter().zip(slice.rel_delta.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Malformed bit strings are rejected, not misparsed.
        let bad = Json::parse(r#"{"delta":["zz"],"rel_delta":[]}"#).unwrap();
        assert!(WireSignalSlice::from_json(&bad).is_err());
    }

    #[test]
    fn distributed_error_maps_to_worker_unavailable() {
        let (status, envelope) =
            ErrorEnvelope::from_charles(&CharlesError::Distributed("worker gone".into()));
        assert_eq!(status, 503);
        assert_eq!(envelope.code, "worker_unavailable");
        assert!(envelope.message.contains("worker gone"));
    }

    #[test]
    fn wire_query_converts_to_engine_query() {
        let wire = WireQuery {
            target: "bonus".into(),
            alpha: Some(0.9),
            condition_attrs: Some(vec!["edu".into()]),
            transform_attrs: Some(vec!["bonus".into()]),
            top_k: Some(3),
        };
        let query = wire.to_query();
        assert_eq!(query.target, "bonus");
        assert_eq!(query.alpha, Some(0.9));
        assert_eq!(query.top_k, Some(3));
        assert_eq!(WireQuery::from_query(&query), wire);
    }
}
