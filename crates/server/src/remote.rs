//! The remote-worker backend of the shard execution plane:
//! [`RemoteExecutor`] is a coordinator-side
//! [`charles_core::ShardExecutor`] that fetches per-shard sufficient
//! statistics from `charles-worker` processes (plain `charles-server`
//! instances hosting the same dataset) over the versioned `/v1/rpc`
//! protocol.
//!
//! ## Exactness
//!
//! Workers serve the *same* statistics the in-process
//! [`charles_core::LocalExecutor`] computes — change-signal slices,
//! phase-A [`ColumnMoments`], phase-B blocked [`GramPartial`]s on the
//! canonical block grid — serialized bit-exactly (`f64::to_bits` hex; see
//! [`crate::proto`]). The coordinator merges them identically, so a
//! distributed query answers **byte-for-byte** what the unsharded
//! in-process query answers, pinned by `tests/shard_equivalence.rs`.
//!
//! ## Partial failure
//!
//! Every non-empty block range has a preferred worker (round-robin by
//! range index). When a worker times out, resets, or answers garbage, it
//! is marked dead and the range is **re-dispatched** to the next live
//! worker — any worker can serve any range, because workers host the
//! whole dataset and ranges are addressed absolutely. The merge still
//! lands on the same block grid, so a re-dispatched run produces the
//! same bits as an undisturbed one. Only when *no* live worker remains
//! does the query fail, with [`CharlesError::Distributed`] (never with a
//! fabricated "infeasible" result).
//!
//! Worker connections are long-lived keep-alive [`HttpClient`]s; the
//! client's transparent reconnect covers idle-timeout closes between
//! queries without burning the worker's liveness.

use crate::client::HttpClient;
use crate::json::Json;
use crate::proto::{ErrorEnvelope, Request, WireColumnMoments, WireGramPartial, WireSignalSlice};
use charles_core::{
    CharlesError, DatasetSpec, ExecutorFactory, Result, ShardExecutor, SignalSlice,
};
use charles_numerics::ols::{ColumnMoments, GramPartial, GRAM_BLOCK_ROWS};
use charles_relation::RowRange;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One worker endpoint: its address, a lazily-dialed keep-alive
/// connection, and a liveness flag the re-dispatch logic flips.
struct WorkerSlot {
    addr: String,
    client: Mutex<Option<HttpClient>>,
    dead: AtomicBool,
}

/// A coordinator over remote shard workers; see the [module docs](self).
pub struct RemoteExecutor {
    dataset: String,
    ranges: Vec<RowRange>,
    workers: Vec<WorkerSlot>,
    timeout: Duration,
    redispatches: AtomicUsize,
}

impl RemoteExecutor {
    /// A coordinator for `dataset` over `workers` (addresses like
    /// `"127.0.0.1:8080"`), splitting `rows` into `shards` block-aligned
    /// ranges (`0` = one shard per worker). Connections are dialed
    /// lazily, on the first statistic each worker serves.
    ///
    /// Every worker must host `dataset` under the same name with
    /// bit-identical column data — which CSV ingest of the same document
    /// guarantees, since CSV numbers parse deterministically.
    pub fn connect(
        dataset: impl Into<String>,
        workers: &[String],
        rows: usize,
        shards: usize,
    ) -> Result<RemoteExecutor> {
        if workers.is_empty() {
            return Err(CharlesError::Distributed(
                "a remote executor needs at least one worker".to_string(),
            ));
        }
        let shards = if shards == 0 { workers.len() } else { shards };
        Ok(RemoteExecutor {
            dataset: dataset.into(),
            ranges: RowRange::split_aligned(rows, shards, GRAM_BLOCK_ROWS),
            workers: workers
                .iter()
                .map(|addr| WorkerSlot {
                    addr: addr.clone(),
                    client: Mutex::new(None),
                    dead: AtomicBool::new(false),
                })
                .collect(),
            timeout: Duration::from_secs(10),
            redispatches: AtomicUsize::new(0),
        })
    }

    /// Override the per-exchange read timeout (default 10 s). A timeout
    /// marks the worker dead and re-dispatches its range.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The dataset name workers serve.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Worker addresses, in dispatch order.
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Workers not (yet) marked dead.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| !w.dead.load(Ordering::Relaxed))
            .count()
    }

    /// How many block ranges have been re-dispatched after a worker
    /// failure (observability for the partial-failure tests and benches).
    pub fn redispatches(&self) -> usize {
        self.redispatches.load(Ordering::Relaxed)
    }

    /// One `/v1/rpc` exchange with one worker. Any failure poisons the
    /// cached connection (the next attempt re-dials); non-2xx responses
    /// surface the worker's error envelope.
    fn call(&self, slot: &WorkerSlot, request: &Request) -> io::Result<Json> {
        let mut guard = slot
            .client
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            let mut client = HttpClient::connect(&slot.addr)?;
            client.set_read_timeout(Some(self.timeout))?;
            *guard = Some(client);
        }
        let Some(client) = guard.as_mut() else {
            return Err(io::Error::other("worker client slot empty after install"));
        };
        let result = client.request("POST", "/v1/rpc", Some(&request.to_json().encode()));
        let response = match result {
            Ok(response) => response,
            Err(e) => {
                *guard = None;
                return Err(e);
            }
        };
        if !response.is_success() {
            let detail = Json::parse(&response.body)
                .ok()
                .and_then(|doc| ErrorEnvelope::from_json(&doc).ok())
                .map_or_else(
                    || format!("HTTP {}", response.status),
                    |e| format!("HTTP {} {}: {}", response.status, e.code, e.message),
                );
            return Err(io::Error::other(detail));
        }
        Json::parse(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Fetch one statistic per non-empty range, in range order: fan
    /// ranges across their preferred workers in parallel, then
    /// re-dispatch any failed range to the remaining live workers.
    // lint:allow(no-panic-in-request-path: slot/range indices come from a bounded fetch_add claim loop, every claimed slot is filled by its claiming worker, and slot mutexes recover from poison)
    fn fan<T, M, P>(&self, what: &str, make: M, parse: P) -> Result<Vec<T>>
    where
        T: Send,
        M: Fn(RowRange) -> Request + Sync,
        P: Fn(&Json, RowRange) -> std::result::Result<T, String> + Sync,
    {
        let active: Vec<RowRange> = self
            .ranges
            .iter()
            .copied()
            .filter(|r| !r.is_empty())
            .collect();
        let slots: Vec<Mutex<Option<T>>> = (0..active.len()).map(|_| Mutex::new(None)).collect();
        let n_workers = self.workers.len();
        let mut last_error = Mutex::new(String::new());

        // Phase 1: each worker serves its preferred ranges, workers in
        // parallel (each holds one serial keep-alive connection).
        std::thread::scope(|scope| {
            for (w, slot) in self.workers.iter().enumerate() {
                let mine: Vec<usize> = (0..active.len()).filter(|i| i % n_workers == w).collect();
                if mine.is_empty() || slot.dead.load(Ordering::Relaxed) {
                    continue;
                }
                let (active, slots, make, parse, last_error) =
                    (&active, &slots, &make, &parse, &last_error);
                scope.spawn(move || {
                    for i in mine {
                        match self.fetch_one(slot, active[i], make, parse) {
                            Ok(value) => {
                                *slots[i]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                    Some(value);
                            }
                            Err(e) => {
                                slot.dead.store(true, Ordering::Relaxed);
                                *last_error
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) = e;
                                return; // remaining ranges re-dispatch below
                            }
                        }
                    }
                });
            }
        });

        // Phase 2: re-dispatch every unserved range — live workers
        // first, then (only when none remain) the workers marked dead,
        // as a last resort. "Dead" is a dispatch *hint*, not a verdict:
        // a worker sidelined by one transient failure (a 503 under
        // backpressure, one slow cold extraction) is resurrected the
        // moment it serves a range again, so a long-lived executor heals
        // instead of grinding down to an empty pool.
        for (i, &range) in active.iter().enumerate() {
            if slots[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_some()
            {
                continue;
            }
            let mut served = false;
            let live: Vec<&WorkerSlot> = self
                .workers
                .iter()
                .filter(|w| !w.dead.load(Ordering::Relaxed))
                .collect();
            let sidelined: Vec<&WorkerSlot> = self
                .workers
                .iter()
                .filter(|w| w.dead.load(Ordering::Relaxed))
                .collect();
            for slot in live.into_iter().chain(sidelined) {
                match self.fetch_one(slot, range, &make, &parse) {
                    Ok(value) => {
                        slot.dead.store(false, Ordering::Relaxed);
                        self.redispatches.fetch_add(1, Ordering::Relaxed);
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
                        served = true;
                        break;
                    }
                    Err(e) => {
                        slot.dead.store(true, Ordering::Relaxed);
                        *last_error
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = e;
                    }
                }
            }
            if !served {
                return Err(CharlesError::Distributed(format!(
                    "no worker could serve {what} for rows [{}, {}) of {:?} \
                     ({} workers registered): {}",
                    range.start,
                    range.end,
                    self.dataset,
                    self.workers.len(),
                    last_error
                        .get_mut()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                )));
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .ok_or_else(|| {
                        CharlesError::Distributed(format!(
                            "range result missing after dispatch for {what} of {:?}",
                            self.dataset
                        ))
                    })
            })
            .collect()
    }

    /// One range from one worker: RPC + decode + shape validation. A
    /// malformed or wrong-shape response counts as a worker failure (the
    /// range re-dispatches) — bad statistics must never reach the merge.
    fn fetch_one<T, M, P>(
        &self,
        slot: &WorkerSlot,
        range: RowRange,
        make: &M,
        parse: &P,
    ) -> std::result::Result<T, String>
    where
        M: Fn(RowRange) -> Request,
        P: Fn(&Json, RowRange) -> std::result::Result<T, String>,
    {
        let doc = self
            .call(slot, &make(range))
            .map_err(|e| format!("worker {}: {e}", slot.addr))?;
        parse(&doc, range).map_err(|e| format!("worker {}: {e}", slot.addr))
    }
}

impl fmt::Debug for RemoteExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteExecutor")
            .field("dataset", &self.dataset)
            .field("workers", &self.worker_addrs())
            .field("shards", &self.ranges.len())
            .field("redispatches", &self.redispatches())
            .finish_non_exhaustive()
    }
}

impl ShardExecutor for RemoteExecutor {
    fn ranges(&self) -> Vec<RowRange> {
        self.ranges.clone()
    }

    fn signal_slices(&self, target: &str) -> Result<Vec<SignalSlice>> {
        self.fan(
            "shard_signals",
            |range| Request::ShardSignals {
                dataset: self.dataset.clone(),
                target: target.to_string(),
                start: range.start,
                len: range.len(),
            },
            |doc, range| {
                let slice = WireSignalSlice::from_json(doc).map_err(|e| e.to_string())?;
                if slice.delta.len() != range.len() || slice.rel_delta.len() != range.len() {
                    return Err(format!(
                        "signal slice of {} rows for a {}-row range",
                        slice.delta.len(),
                        range.len()
                    ));
                }
                Ok(SignalSlice {
                    delta: slice.delta,
                    rel_delta: slice.rel_delta,
                })
            },
        )
    }

    fn column_moments(&self, target: &str, tran_attrs: &[String]) -> Result<Vec<ColumnMoments>> {
        self.fan(
            "shard_moments",
            |range| Request::ShardMoments {
                dataset: self.dataset.clone(),
                target: target.to_string(),
                tran_attrs: tran_attrs.to_vec(),
                start: range.start,
                len: range.len(),
            },
            |doc, range| {
                let moments = WireColumnMoments::from_json(doc)
                    .map_err(|e| e.to_string())?
                    .moments;
                if moments.rows != range.len() || moments.max_abs.len() != tran_attrs.len() {
                    return Err(format!(
                        "moments of {} rows × {} columns for a {}-row × {}-column request",
                        moments.rows,
                        moments.max_abs.len(),
                        range.len(),
                        tran_attrs.len()
                    ));
                }
                Ok(moments)
            },
        )
    }

    fn gram_partials(
        &self,
        target: &str,
        tran_attrs: &[String],
        scales: &[f64],
    ) -> Result<Vec<GramPartial>> {
        self.fan(
            "shard_gram",
            |range| Request::ShardGram {
                dataset: self.dataset.clone(),
                target: target.to_string(),
                tran_attrs: tran_attrs.to_vec(),
                scales: scales.to_vec(),
                start: range.start,
                len: range.len(),
            },
            |doc, range| {
                let partial = WireGramPartial::from_json(doc)
                    .map_err(|e| e.to_string())?
                    .partial;
                if partial.first_block != range.start / GRAM_BLOCK_ROWS {
                    return Err(format!(
                        "gram partial anchored at block {} for a range starting at row {}",
                        partial.first_block, range.start
                    ));
                }
                // Full shape validation before anything reaches the
                // merge: `fit_from_parts` folds with zips, which would
                // silently truncate a wrong-dimension payload into a
                // wrong (but plausible-looking) fit. A version-skewed or
                // differently-loaded worker must re-dispatch instead.
                let expect_blocks = range.len().div_ceil(GRAM_BLOCK_ROWS);
                if partial.blocks().len() != expect_blocks {
                    return Err(format!(
                        "gram partial with {} blocks for a {}-row range ({expect_blocks} expected)",
                        partial.blocks().len(),
                        range.len()
                    ));
                }
                let d = tran_attrs.len() + 1;
                for (b, block) in partial.blocks().iter().enumerate() {
                    if block.xtx().len() != d * d || block.xty().len() != d {
                        return Err(format!(
                            "gram block {b} of dimension {}×{} for a {d}-column design",
                            block.xtx().len(),
                            block.xty().len()
                        ));
                    }
                }
                Ok(partial)
            },
        )
    }
}

/// A [`DatasetSpec::Remote`] whose executor dials `workers` for `dataset`
/// once the coordinator's local pair is open — the standard way to
/// register a remote-backed dataset with a
/// [`charles_core::SessionManager`]. `shards = 0` opens one shard per
/// worker. Workers must host `dataset` (same name, same CSV bytes);
/// [`upload_csv`] is the matching loader.
pub fn remote_dataset_spec(
    inner: DatasetSpec,
    dataset: impl Into<String>,
    workers: Vec<String>,
    shards: usize,
) -> DatasetSpec {
    let dataset = dataset.into();
    let worker_addrs = workers.clone();
    let connect: ExecutorFactory = Arc::new(move |pair| {
        let executor = RemoteExecutor::connect(dataset.clone(), &worker_addrs, pair.len(), shards)?;
        Ok(Arc::new(executor) as Arc<dyn ShardExecutor>)
    });
    DatasetSpec::remote(inner, workers, shards, connect)
}

/// Load a dataset onto a worker over the wire (the `load_csv` op): the
/// same CSV documents on every worker and on the coordinator guarantee
/// bit-identical columns everywhere, which the exactness contract needs.
pub fn upload_csv(
    addr: &str,
    dataset: &str,
    source_csv: &str,
    target_csv: &str,
    key: Option<&str>,
) -> io::Result<()> {
    let request = Request::LoadCsv {
        dataset: dataset.to_string(),
        source_csv: source_csv.to_string(),
        target_csv: target_csv.to_string(),
        key: key.map(str::to_string),
    };
    let response =
        crate::client::http_request(addr, "POST", "/v1/rpc", Some(&request.to_json().encode()))?;
    if !response.is_success() {
        return Err(io::Error::other(format!(
            "worker {addr} refused dataset {dataset:?}: HTTP {} {}",
            response.status, response.body
        )));
    }
    Ok(())
}
