//! The threaded serving front end: a `std::net` HTTP/1.1 listener routing
//! REST-style paths (and a versioned `/v1/rpc` endpoint) onto a shared
//! [`SessionManager`].
//!
//! Architecture: one accept thread hands connections to a **bounded**
//! queue drained by a fixed worker pool (thread-per-connection inside the
//! pool, keep-alive honored). The bound is the backpressure mechanism —
//! when all workers are busy and the queue is full, new connections are
//! answered `503` immediately instead of piling up unboundedly.
//! [`Server::shutdown`] is graceful: in-flight requests complete, idle
//! keep-alive connections close, and every thread is joined.
//!
//! ## Routes (all responses `application/json`)
//!
//! | Method & path                        | Meaning                               |
//! |--------------------------------------|---------------------------------------|
//! | `GET  /healthz`                      | liveness probe                        |
//! | `GET  /v1/datasets`                  | stats for every registered dataset    |
//! | `POST /v1/datasets/{name}`           | ingest CSV (`{source_csv, target_csv, key?}`) |
//! | `DELETE /v1/datasets/{name}`         | unregister (drops any open session)   |
//! | `POST /v1/datasets/{name}/query`     | run one query (body = wire query)     |
//! | `POST /v1/datasets/{name}/multi`     | run several (`{queries: [...]}`)       |
//! | `POST /v1/datasets/{name}/sweep`     | α-sweep (`{query, alphas}`)           |
//! | `GET  /v1/datasets/{name}/targets`   | changed numeric attributes            |
//! | `GET  /v1/datasets/{name}/stats`     | registry + session counters           |
//! | `POST /v1/datasets/{name}/evict`     | drop the open session, keep the spec  |
//! | `POST /v1/rpc`                       | a versioned [`Request`] envelope      |

use crate::http::{read_request, write_response, HttpRequest, ReadError};
use crate::json::Json;
use crate::proto::{
    ErrorEnvelope, Request, WireColumnMoments, WireDatasetStats, WireGramPartial, WireQuery,
    WireQueryResult, WireSignalSlice, PROTOCOL_VERSION,
};
use charles_core::{CharlesError, SessionManager};
use charles_relation::RowRange;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Front-end knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before new ones
    /// are answered `503` (the backpressure bound).
    pub max_pending: usize,
    /// How long an idle keep-alive connection may hold a worker before the
    /// server closes it (also bounds slow-loris clients).
    pub idle_timeout: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_pending: 64,
            idle_timeout: std::time::Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// Set the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Set the worker-pool size (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the pending-connection bound (clamped to ≥ 1).
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Set the keep-alive idle timeout.
    pub fn with_idle_timeout(mut self, idle_timeout: std::time::Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }
}

struct Shared {
    manager: Arc<SessionManager>,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    max_pending: usize,
    idle_timeout: std::time::Duration,
}

/// A running server; dropping it shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `manager` in background threads; returns as
    /// soon as the listener is live.
    pub fn start(manager: Arc<SessionManager>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            max_pending: config.max_pending.max(1),
            idle_timeout: config.idle_timeout,
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("charles-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("charles-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wakeup barrier: workers check the flag only while holding the
        // queue mutex, so after this lock round-trip every worker is
        // either before its check (and will see the flag) or already
        // parked in `wait` (and will receive the notify below). Without
        // it, a notify landing between a worker's check and its `wait`
        // would be lost and the join would hang.
        drop(lock_queue(&self.shared));
        self.shared.available.notify_all();
        // Unblock the accept loop with a wake-up connection; it checks the
        // flag before queueing.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            self.shared.available.notify_all();
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock the connection queue, recovering from poison: the queue holds
/// plain `TcpStream`s, which stay structurally valid even if a worker
/// panicked mid-push, so serving beats propagating the panic.
fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (EMFILE under fd exhaustion) would
            // otherwise busy-spin a core at the worst possible moment.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a raced client) is dropped
        }
        let mut queue = lock_queue(shared);
        if queue.len() >= shared.max_pending {
            drop(queue);
            // Backpressure: refuse rather than queue unboundedly. Half-close
            // and drain the unread request so closing doesn't RST the
            // refusal out of the client's receive buffer. The drain runs on
            // the accept thread, so it is hard-capped in both time and
            // bytes — a trickling client must not block new accepts.
            let mut stream = stream;
            let envelope = ErrorEnvelope::new("overloaded", "server at capacity, retry later");
            let _ = write_response(&mut stream, 503, &envelope.to_json().encode(), false);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(250);
            let mut drained = 0usize;
            let mut sink = [0u8; 4096];
            while drained < 64 * 1024 && std::time::Instant::now() < deadline {
                match io::Read::read(&mut stream, &mut sink) {
                    Ok(n) if n > 0 => drained += n,
                    _ => break,
                }
            }
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        serve_connection(stream, shared);
    }
}

/// Serve one connection until close, error, or shutdown. An idle read
/// timeout bounds how long a keep-alive connection (or a slow-loris
/// client) can hold a worker, and lets shutdown reclaim workers parked on
/// idle connections.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    // Request→response exchanges on keep-alive connections: Nagle only
    // adds delayed-ACK stalls between a response and the next request.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut read_half = BufReader::new(stream);
    loop {
        match read_request(&mut read_half) {
            Ok(request) => {
                let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
                let (status, body) = route(&shared.manager, &request);
                if write_response(&mut write_half, status, &body.encode(), !close).is_err() || close
                {
                    return;
                }
            }
            Err(ReadError::Eof) => return,
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(status, message)) => {
                let envelope = ErrorEnvelope::new("bad_request", message);
                let _ =
                    write_response(&mut write_half, status, &envelope.to_json().encode(), false);
                return;
            }
        }
    }
}

/// Route one HTTP request to a protocol [`Request`] and dispatch it.
fn route(manager: &SessionManager, request: &HttpRequest) -> (u16, Json) {
    match route_inner(manager, request) {
        Ok(body) => (200, body),
        Err((status, envelope)) => (status, envelope.to_json()),
    }
}

type RouteResult = Result<Json, (u16, ErrorEnvelope)>;

fn bad_request(message: impl Into<String>) -> (u16, ErrorEnvelope) {
    (400, ErrorEnvelope::new("bad_request", message))
}

/// Decode `%XX` escapes in one path segment (no `+`→space: that is
/// query-string form encoding, not path encoding). `None` on malformed
/// escapes or non-UTF-8 results.
// lint:allow(no-panic-in-request-path: i < bytes.len() is the loop guard and lookahead reads use bytes.get)
fn percent_decode(segment: &str) -> Option<String> {
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = |b: &u8| (*b as char).to_digit(16);
            let hi = bytes.get(i + 1).and_then(hex)?;
            let lo = bytes.get(i + 2).and_then(hex)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn route_inner(manager: &SessionManager, request: &HttpRequest) -> RouteResult {
    // Strip any query string; the API carries arguments in bodies. Each
    // segment is percent-decoded after splitting, so names containing
    // '/', '?', spaces, or non-ASCII are reachable through the REST
    // surface as `%XX` escapes (the /v1/rpc envelope takes them raw).
    let path = request.path.split('?').next().unwrap_or("");
    let decoded: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(percent_decode)
        .collect::<Option<_>>()
        .ok_or_else(|| bad_request("malformed percent-encoding in path"))?;
    let segments: Vec<&str> = decoded.iter().map(String::as_str).collect();
    let method = request.method.as_str();

    let body_json = || -> Result<Json, (u16, ErrorEnvelope)> {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| bad_request("body must be UTF-8 JSON"))?;
        Json::parse(text).map_err(|e| bad_request(e.to_string()))
    };

    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("protocol_version", Json::num_usize(PROTOCOL_VERSION)),
        ])),
        ("GET", ["v1", "datasets"]) => dispatch(manager, &Request::Stats { dataset: None }),
        ("POST", ["v1", "rpc"]) => {
            let request =
                Request::from_json(&body_json()?).map_err(|e| bad_request(e.to_string()))?;
            dispatch(manager, &request)
        }
        ("POST", ["v1", "datasets", name]) => {
            let body = body_json()?;
            let request = Request::LoadCsv {
                dataset: (*name).to_string(),
                source_csv: body
                    .get("source_csv")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad_request("missing field \"source_csv\""))?
                    .to_string(),
                target_csv: body
                    .get("target_csv")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad_request("missing field \"target_csv\""))?
                    .to_string(),
                key: body.get("key").and_then(Json::as_str).map(str::to_string),
            };
            dispatch(manager, &request)
        }
        ("DELETE", ["v1", "datasets", name]) => {
            let removed = manager.unregister(name);
            if removed {
                Ok(Json::obj([("unregistered", Json::Bool(true))]))
            } else {
                Err((
                    404,
                    ErrorEnvelope::new("unknown_dataset", format!("{name:?} is not registered")),
                ))
            }
        }
        ("POST", ["v1", "datasets", name, "query"]) => {
            let query =
                WireQuery::from_json(&body_json()?).map_err(|e| bad_request(e.to_string()))?;
            dispatch(
                manager,
                &Request::RunQuery {
                    dataset: (*name).to_string(),
                    query,
                },
            )
        }
        ("POST", ["v1", "datasets", name, "multi"]) => {
            let body = body_json()?;
            let queries = body
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad_request("missing array field \"queries\""))?
                .iter()
                .map(WireQuery::from_json)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| bad_request(e.to_string()))?;
            dispatch(
                manager,
                &Request::RunMulti {
                    dataset: (*name).to_string(),
                    queries,
                },
            )
        }
        ("POST", ["v1", "datasets", name, "sweep"]) => {
            let body = body_json()?;
            let query = WireQuery::from_json(
                body.get("query")
                    .ok_or_else(|| bad_request("missing field \"query\""))?,
            )
            .map_err(|e| bad_request(e.to_string()))?;
            let alphas = body
                .get("alphas")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad_request("missing array field \"alphas\""))?
                .iter()
                .map(|a| {
                    a.as_f64()
                        .ok_or_else(|| bad_request("alphas must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            dispatch(
                manager,
                &Request::SweepAlpha {
                    dataset: (*name).to_string(),
                    query,
                    alphas,
                },
            )
        }
        ("GET", ["v1", "datasets", name, "targets"]) => dispatch(
            manager,
            &Request::ListTargets {
                dataset: (*name).to_string(),
            },
        ),
        ("GET", ["v1", "datasets", name, "stats"]) => dispatch(
            manager,
            &Request::Stats {
                dataset: Some((*name).to_string()),
            },
        ),
        ("POST", ["v1", "datasets", name, "evict"]) => {
            if !manager.contains(name) {
                return Err((
                    404,
                    ErrorEnvelope::new("unknown_dataset", format!("{name:?} is not registered")),
                ));
            }
            let evicted = manager.evict(name);
            Ok(Json::obj([("evicted", Json::Bool(evicted))]))
        }
        _ => {
            // Distinguish "this path exists under another method" (405)
            // from a path no method serves (404).
            let known_path = matches!(
                segments.as_slice(),
                ["healthz"]
                    | ["v1", "rpc"]
                    | ["v1", "datasets"]
                    | ["v1", "datasets", _]
                    | [
                        "v1",
                        "datasets",
                        _,
                        "query" | "multi" | "sweep" | "targets" | "stats" | "evict"
                    ]
            );
            if known_path {
                Err((
                    405,
                    ErrorEnvelope::new(
                        "method_not_allowed",
                        format!("{method} not allowed on {path:?}"),
                    ),
                ))
            } else {
                Err((
                    404,
                    ErrorEnvelope::new("not_found", format!("no route for {path:?}")),
                ))
            }
        }
    }
}

/// A shard-statistics row range from wire-supplied `start`/`len`,
/// rejecting overflow as a client error.
fn shard_range(start: usize, len: usize) -> Result<RowRange, (u16, ErrorEnvelope)> {
    start
        .checked_add(len)
        .map(|end| RowRange::new(start, end))
        .ok_or_else(|| bad_request("shard range start + len overflows"))
}

/// Execute a protocol request against the manager. Shared by every route
/// and by `/v1/rpc`.
pub fn dispatch(manager: &SessionManager, request: &Request) -> RouteResult {
    let engine_err = |e: CharlesError| ErrorEnvelope::from_charles(&e);
    // Failures while *opening* a registered dataset (its backing CSV was
    // deleted, a provider broke) are server-state problems, not client
    // errors — only "not registered" stays a 404.
    let open_err = |e: CharlesError| match e {
        CharlesError::Relation(_) => (
            503,
            ErrorEnvelope::new("dataset_unavailable", e.to_string()),
        ),
        _ => ErrorEnvelope::from_charles(&e),
    };
    match request {
        Request::RunQuery { dataset, query } => {
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let result = session.run(&query.to_query()).map_err(engine_err)?;
            Ok(WireQueryResult::from_result(&result).to_json())
        }
        Request::RunMulti { dataset, queries } => {
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let engine_queries: Vec<_> = queries.iter().map(WireQuery::to_query).collect();
            let results = session.run_multi(&engine_queries).map_err(engine_err)?;
            Ok(Json::obj([(
                "results",
                Json::Arr(
                    results
                        .iter()
                        .map(|r| WireQueryResult::from_result(r).to_json())
                        .collect(),
                ),
            )]))
        }
        Request::SweepAlpha {
            dataset,
            query,
            alphas,
        } => {
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let base = session.run(&query.to_query()).map_err(engine_err)?;
            let swept = session.sweep_alpha(&base, alphas).map_err(engine_err)?;
            Ok(Json::obj([(
                "results",
                Json::Arr(
                    swept
                        .iter()
                        .map(|r| WireQueryResult::from_result(r).to_json())
                        .collect(),
                ),
            )]))
        }
        Request::ListTargets { dataset } => {
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let targets = session.targets().map_err(engine_err)?;
            Ok(Json::obj([("targets", Json::str_arr(targets))]))
        }
        Request::Stats { dataset } => {
            let stats_of = |d: &charles_core::DatasetStats| -> Json {
                // `peek` keeps stats reads from perturbing LRU order.
                let session = manager.peek_session(&d.name).map(|s| s.stats());
                WireDatasetStats {
                    dataset: d.clone(),
                    session,
                }
                .to_json()
            };
            match dataset {
                Some(name) => {
                    let stats = manager.dataset_stats(name).map_err(engine_err)?;
                    Ok(stats_of(&stats))
                }
                None => Ok(Json::obj([
                    (
                        "datasets",
                        Json::Arr(manager.list().iter().map(stats_of).collect()),
                    ),
                    (
                        "resident_sessions",
                        Json::num_usize(manager.resident_sessions()),
                    ),
                    ("resident_bytes", Json::num_usize(manager.resident_bytes())),
                ])),
            }
        }
        // The worker role: block-range shard statistics, serialized
        // bit-exactly (see the Wire* types in [`crate::proto`]). The
        // session plane behind these is the ordinary cached one, so a
        // worker serving many ranges of one dataset extracts each column
        // once and keeps it for the dataset's residency. `start + len`
        // is hostile input: checked addition, so an overflowing request
        // is a 400 in every build profile rather than a debug panic.
        Request::ShardSignals {
            dataset,
            target,
            start,
            len,
        } => {
            let range = shard_range(*start, *len)?;
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let (delta, rel_delta) = session
                .shard_signal_slice(target, range)
                .map_err(engine_err)?;
            Ok(WireSignalSlice { delta, rel_delta }.to_json())
        }
        Request::ShardMoments {
            dataset,
            target,
            tran_attrs,
            start,
            len,
        } => {
            let range = shard_range(*start, *len)?;
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let moments = session
                .shard_column_moments(target, tran_attrs, range)
                .map_err(engine_err)?;
            Ok(WireColumnMoments { moments }.to_json())
        }
        Request::ShardGram {
            dataset,
            target,
            tran_attrs,
            scales,
            start,
            len,
        } => {
            let range = shard_range(*start, *len)?;
            let session = manager.open_or_get(dataset).map_err(open_err)?;
            let partial = session
                .shard_gram_partial(target, tran_attrs, scales, range)
                .map_err(engine_err)?;
            Ok(WireGramPartial { partial }.to_json())
        }
        Request::LoadCsv {
            dataset,
            source_csv,
            target_csv,
            key,
        } => {
            manager
                .register_csv_inline(
                    dataset.clone(),
                    source_csv.clone(),
                    target_csv.clone(),
                    key.clone(),
                )
                .map_err(engine_err)?;
            // Ingest leaves the session resident; peek instead of a
            // redundant open (None only if the budget evicted it already).
            let rows = manager
                .peek_session(dataset)
                .map(|s| s.pair().len())
                .map_or(Json::Null, Json::num_usize);
            Ok(Json::obj([
                ("registered", Json::str(dataset.clone())),
                ("rows", rows),
            ]))
        }
    }
}
