//! Property tests pinning the wire protocol's core guarantee:
//! encode→decode is *identity* for every protocol type — including floats
//! (α, scores), unicode attribute names, and strings that need escaping.

use charles_server::{ErrorEnvelope, Json, RankedSummary, Request, WireQuery, WireQueryResult};
use proptest::prelude::*;

/// Attribute-name-ish strings: unicode letters, quotes, newlines/tabs —
/// and (on half the cases) an appended backslash-and-quote suffix, so
/// every escape path in the encoder gets exercised.
fn name_strategy() -> BoxedStrategy<String> {
    ("[a-zA-Z0-9 _,'\"μ≥π💡\n\t-]{0,12}", any::<bool>())
        .prop_map(|(s, esc)| if esc { format!("{s}\\ \"q\" \u{1}") } else { s })
        .boxed()
}

fn opt_names() -> BoxedStrategy<Option<Vec<String>>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(name_strategy(), 0..4).prop_map(Some),
    ]
    .boxed()
}

fn finite_f64() -> BoxedStrategy<f64> {
    prop_oneof![
        (-1e9f64..1e9).boxed(),
        (0.0f64..=1.0).boxed(),
        Just(0.0).boxed(),
        Just(-0.0).boxed(),
        Just(1.0 / 3.0).boxed(),
        Just(f64::MIN_POSITIVE).boxed(),
    ]
    .boxed()
}

fn query_strategy() -> BoxedStrategy<WireQuery> {
    (
        name_strategy(),
        prop_oneof![Just(None), finite_f64().prop_map(Some)],
        opt_names(),
        opt_names(),
        prop_oneof![Just(None), (0usize..10_000).prop_map(Some)],
    )
        .prop_map(
            |(target, alpha, condition_attrs, transform_attrs, top_k)| WireQuery {
                target,
                alpha,
                condition_attrs,
                transform_attrs,
                top_k,
            },
        )
        .boxed()
}

fn summary_strategy() -> BoxedStrategy<RankedSummary> {
    (
        (
            1usize..100,
            finite_f64(),
            finite_f64(),
            finite_f64(),
            proptest::collection::vec(name_strategy(), 0..4),
        ),
        (
            proptest::collection::vec(name_strategy(), 0..3),
            proptest::collection::vec(name_strategy(), 0..3),
            (0.0f64..=1.0),
        ),
    )
        .prop_map(
            |(
                (rank, score, accuracy, interpretability, cts),
                (condition_attrs, transform_attrs, changed_coverage),
            )| RankedSummary {
                rank,
                score,
                accuracy,
                interpretability,
                cts,
                condition_attrs,
                transform_attrs,
                changed_coverage,
            },
        )
        .boxed()
}

fn result_strategy() -> BoxedStrategy<WireQueryResult> {
    (
        name_strategy(),
        (0.0f64..=1.0),
        (0.0f64..1e7),
        (0usize..100_000, 0usize..100_000, 0usize..100_000),
        proptest::collection::vec(summary_strategy(), 0..4),
    )
        .prop_map(
            |(target, alpha, elapsed_ms, (candidates, evaluated, distinct), summaries)| {
                WireQueryResult {
                    target,
                    alpha,
                    elapsed_ms,
                    candidates,
                    evaluated,
                    distinct,
                    summaries,
                }
            },
        )
        .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        (name_strategy(), query_strategy())
            .prop_map(|(dataset, query)| Request::RunQuery { dataset, query }),
        (
            name_strategy(),
            proptest::collection::vec(query_strategy(), 0..3)
        )
            .prop_map(|(dataset, queries)| Request::RunMulti { dataset, queries }),
        (
            name_strategy(),
            query_strategy(),
            proptest::collection::vec(0.0f64..=1.0, 0..5)
        )
            .prop_map(|(dataset, query, alphas)| Request::SweepAlpha {
                dataset,
                query,
                alphas
            }),
        name_strategy().prop_map(|dataset| Request::ListTargets { dataset }),
        prop_oneof![Just(None), name_strategy().prop_map(Some)]
            .prop_map(|dataset| Request::Stats { dataset }),
        (
            (name_strategy(), name_strategy(), name_strategy()),
            prop_oneof![Just(None), name_strategy().prop_map(Some)]
        )
            .prop_map(
                |((dataset, source_csv, target_csv), key)| Request::LoadCsv {
                    dataset,
                    source_csv,
                    target_csv,
                    key
                }
            ),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn wire_query_roundtrips(query in query_strategy()) {
        let encoded = query.to_json().encode();
        let reparsed = Json::parse(&encoded).expect("valid JSON");
        let decoded = WireQuery::from_json(&reparsed).expect("decodes");
        prop_assert_eq!(decoded, query, "{}", encoded);
    }

    #[test]
    fn wire_query_result_roundtrips(result in result_strategy()) {
        let encoded = result.to_json().encode();
        let decoded = WireQueryResult::from_json(&Json::parse(&encoded).expect("valid JSON"))
            .expect("decodes");
        // Floats must survive bit-exactly (shortest round-trip encoding).
        prop_assert_eq!(
            decoded.alpha.to_bits(), result.alpha.to_bits(),
            "alpha bits changed through {}", encoded
        );
        for (d, r) in decoded.summaries.iter().zip(result.summaries.iter()) {
            prop_assert_eq!(d.score.to_bits(), r.score.to_bits());
            prop_assert_eq!(d.accuracy.to_bits(), r.accuracy.to_bits());
        }
        prop_assert_eq!(decoded, result, "{}", encoded);
    }

    #[test]
    fn request_envelopes_roundtrip(request in request_strategy()) {
        let encoded = request.to_json().encode();
        let decoded = Request::from_json(&Json::parse(&encoded).expect("valid JSON"))
            .expect("decodes");
        prop_assert_eq!(decoded, request, "{}", encoded);
    }

    #[test]
    fn error_envelopes_roundtrip(code in name_strategy(), message in name_strategy()) {
        let envelope = ErrorEnvelope::new(code, message);
        let decoded = ErrorEnvelope::from_json(
            &Json::parse(&envelope.to_json().encode()).expect("valid JSON"),
        ).expect("decodes");
        prop_assert_eq!(decoded, envelope);
    }

    #[test]
    fn json_text_reparse_is_stable(query in query_strategy()) {
        // encode → parse → encode must be a fixed point (stable wire text).
        let once = query.to_json().encode();
        let twice = Json::parse(&once).expect("valid").encode();
        prop_assert_eq!(once, twice);
    }
}
