//! End-to-end tests: a real listener, raw TCP clients, multi-tenant
//! datasets, eviction correctness, error envelopes, backpressure, and
//! graceful shutdown.

use charles_core::{DatasetSpec, ManagerConfig, Query, Session, SessionManager};
use charles_server::{http_request, HttpClient, Json, Server, ServerConfig, WireQuery};
use charles_synth::example1;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn demo_manager() -> Arc<SessionManager> {
    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
    let scenario = example1();
    let pair = charles_relation::SnapshotPair::align(scenario.source, scenario.target).unwrap();
    manager.register_pair("demo", pair);
    manager
}

fn start(manager: Arc<SessionManager>) -> Server {
    Server::start(manager, ServerConfig::default().with_workers(2)).unwrap()
}

fn query_body(target: &str) -> String {
    WireQuery::new(target).to_json().encode()
}

#[test]
fn health_and_query_roundtrip() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let health = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(health.body.contains("\"protocol_version\":1"));

    let response = http_request(
        addr,
        "POST",
        "/v1/datasets/demo/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = Json::parse(&response.body).unwrap();
    assert_eq!(doc.get("target").unwrap().as_str(), Some("bonus"));
    let summaries = doc.get("summaries").unwrap().as_arr().unwrap();
    assert!(!summaries.is_empty());
    let top = &summaries[0];
    assert!(top.get("accuracy").unwrap().as_f64().unwrap() > 0.99);
    assert_eq!(top.get("rank").unwrap().as_usize(), Some(1));

    // A warm rerun over the wire is byte-identical except elapsed_ms.
    let again = http_request(
        addr,
        "POST",
        "/v1/datasets/demo/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    let strip = |body: &str| -> Json {
        let mut doc = Json::parse(body).unwrap();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "elapsed_ms");
        }
        doc
    };
    assert_eq!(strip(&response.body), strip(&again.body));
    server.shutdown();
}

#[test]
fn error_envelopes_are_typed() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let missing = http_request(
        addr,
        "POST",
        "/v1/datasets/nope/query",
        Some(&query_body("x")),
    )
    .unwrap();
    assert_eq!(missing.status, 404, "{}", missing.body);
    assert!(missing.body.contains("\"code\":\"unknown_dataset\""));

    let bad_target = http_request(
        addr,
        "POST",
        "/v1/datasets/demo/query",
        Some(&query_body("nope")),
    )
    .unwrap();
    assert_eq!(bad_target.status, 404, "{}", bad_target.body);
    assert!(bad_target.body.contains("\"code\":\"unknown_target\""));

    let non_numeric = http_request(
        addr,
        "POST",
        "/v1/datasets/demo/query",
        Some(&query_body("edu")),
    )
    .unwrap();
    assert_eq!(non_numeric.status, 400, "{}", non_numeric.body);
    assert!(non_numeric.body.contains("\"code\":\"bad_query\""));

    let bad_alpha_body = r#"{"target":"bonus","alpha":2.5}"#;
    let bad_alpha = http_request(
        addr,
        "POST",
        "/v1/datasets/demo/query",
        Some(bad_alpha_body),
    )
    .unwrap();
    assert_eq!(bad_alpha.status, 400, "{}", bad_alpha.body);
    assert!(bad_alpha.body.contains("\"code\":\"bad_config\""));

    let not_json = http_request(addr, "POST", "/v1/datasets/demo/query", Some("not json")).unwrap();
    assert_eq!(not_json.status, 400, "{}", not_json.body);
    assert!(not_json.body.contains("\"code\":\"bad_request\""));

    let no_route = http_request(addr, "GET", "/v2/everything", None).unwrap();
    assert_eq!(no_route.status, 404);
    // An unknown path *under* /v1 is 404, not 405: no method serves it.
    let typo = http_request(addr, "GET", "/v1/bogus", None).unwrap();
    assert_eq!(typo.status, 404, "{}", typo.body);
    let wrong_method = http_request(addr, "PATCH", "/v1/datasets/demo/query", None).unwrap();
    assert_eq!(wrong_method.status, 405, "{}", wrong_method.body);

    // Hostile deeply-nested JSON is rejected, not a process-killing
    // stack overflow.
    let bomb = "[".repeat(50_000);
    let nested = http_request(addr, "POST", "/v1/rpc", Some(&bomb)).unwrap();
    assert_eq!(nested.status, 400, "{}", nested.body);
    assert!(nested.body.contains("nesting"), "{}", nested.body);
    server.shutdown();
}

#[test]
fn rpc_endpoint_speaks_versioned_envelopes() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let rpc = charles_server::Request::RunQuery {
        dataset: "demo".into(),
        query: WireQuery::new("bonus"),
    };
    let response = http_request(addr, "POST", "/v1/rpc", Some(&rpc.to_json().encode())).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"summaries\""));

    let future = r#"{"v":99,"op":"run_query","dataset":"demo","query":{"target":"bonus"}}"#;
    let rejected = http_request(addr, "POST", "/v1/rpc", Some(future)).unwrap();
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    assert!(rejected.body.contains("unsupported protocol version"));
    server.shutdown();
}

#[test]
fn targets_stats_sweep_and_multi() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let targets = http_request(addr, "GET", "/v1/datasets/demo/targets", None).unwrap();
    assert_eq!(targets.status, 200, "{}", targets.body);
    assert!(targets.body.contains("\"bonus\""));

    let sweep_body = r#"{"query":{"target":"bonus"},"alphas":[0.0,0.5,1.0]}"#;
    let sweep = http_request(addr, "POST", "/v1/datasets/demo/sweep", Some(sweep_body)).unwrap();
    assert_eq!(sweep.status, 200, "{}", sweep.body);
    let doc = Json::parse(&sweep.body).unwrap();
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 3);
    let alphas: Vec<f64> = results
        .iter()
        .map(|r| r.get("alpha").unwrap().as_f64().unwrap())
        .collect();
    assert_eq!(alphas, vec![0.0, 0.5, 1.0]);

    let multi_body = r#"{"queries":[{"target":"bonus"},{"target":"bonus","alpha":1.0}]}"#;
    let multi = http_request(addr, "POST", "/v1/datasets/demo/multi", Some(multi_body)).unwrap();
    assert_eq!(multi.status, 200, "{}", multi.body);
    let doc = Json::parse(&multi.body).unwrap();
    assert_eq!(doc.get("results").unwrap().as_arr().unwrap().len(), 2);

    let stats = http_request(addr, "GET", "/v1/datasets/demo/stats", None).unwrap();
    assert_eq!(stats.status, 200, "{}", stats.body);
    let doc = Json::parse(&stats.body).unwrap();
    assert_eq!(doc.get("resident").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("session")
        .unwrap()
        .get("global_fits_computed")
        .is_some());

    let listing = http_request(addr, "GET", "/v1/datasets", None).unwrap();
    assert_eq!(listing.status, 200);
    assert!(listing.body.contains("\"demo\""), "{}", listing.body);
    server.shutdown();
}

#[test]
fn csv_ingest_eviction_and_unregister() {
    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
    let mut server = start(Arc::clone(&manager));
    let addr = server.local_addr();

    // Ingest the example-1 snapshots as CSV text over the wire.
    let scenario = example1();
    let mut source_csv = Vec::new();
    let mut target_csv = Vec::new();
    charles_relation::write_csv(&scenario.source, &mut source_csv).unwrap();
    charles_relation::write_csv(&scenario.target, &mut target_csv).unwrap();
    let ingest = Json::obj([
        (
            "source_csv",
            Json::str(String::from_utf8(source_csv).unwrap()),
        ),
        (
            "target_csv",
            Json::str(String::from_utf8(target_csv).unwrap()),
        ),
        ("key", Json::str("name")),
    ]);
    let loaded =
        http_request(addr, "POST", "/v1/datasets/payroll", Some(&ingest.encode())).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    assert!(loaded.body.contains("\"registered\":\"payroll\""));

    // Served answers must match a direct in-process session.
    let served = http_request(
        addr,
        "POST",
        "/v1/datasets/payroll/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(served.status, 200, "{}", served.body);
    let direct_pair =
        charles_relation::SnapshotPair::align(example1().source, example1().target).unwrap();
    let direct = Session::open(direct_pair).unwrap();
    let direct_top = direct
        .run(&Query::new("bonus"))
        .unwrap()
        .top()
        .unwrap()
        .scores
        .score;
    let doc = Json::parse(&served.body).unwrap();
    let served_top = doc.get("summaries").unwrap().as_arr().unwrap()[0]
        .get("score")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        (served_top - direct_top).abs() < 1e-12,
        "served {served_top} vs direct {direct_top}"
    );

    // Evict, then re-query: the manager re-opens from the retained CSV
    // text and answers identically.
    let evicted = http_request(addr, "POST", "/v1/datasets/payroll/evict", None).unwrap();
    assert_eq!(evicted.status, 200, "{}", evicted.body);
    assert!(evicted.body.contains("\"evicted\":true"));
    assert_eq!(manager.resident_sessions(), 0);
    let reopened = http_request(
        addr,
        "POST",
        "/v1/datasets/payroll/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(reopened.status, 200);
    let strip = |body: &str| -> Json {
        let mut doc = Json::parse(body).unwrap();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "elapsed_ms");
        }
        doc
    };
    assert_eq!(strip(&served.body), strip(&reopened.body));

    let removed = http_request(addr, "DELETE", "/v1/datasets/payroll", None).unwrap();
    assert_eq!(removed.status, 200, "{}", removed.body);
    let gone = http_request(
        addr,
        "POST",
        "/v1/datasets/payroll/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(gone.status, 404);

    // Malformed CSV is rejected with a typed envelope and not registered.
    let bad = Json::obj([
        ("source_csv", Json::str("a,b\n1")),
        ("target_csv", Json::str("a,b\n1,2\n")),
    ]);
    let rejected = http_request(addr, "POST", "/v1/datasets/broken", Some(&bad.encode())).unwrap();
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    assert!(rejected.body.contains("\"code\":\"bad_data\""));
    assert!(!manager.contains("broken"));
    server.shutdown();
}

#[test]
fn percent_encoded_dataset_names_route() {
    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
    let scenario = example1();
    let pair = charles_relation::SnapshotPair::align(scenario.source, scenario.target).unwrap();
    manager.register_pair("my μ-data", pair);
    let mut server = start(manager);
    let addr = server.local_addr();

    // "my μ-data" = my%20%CE%BC-data (space + UTF-8 µ, percent-escaped).
    let targets = http_request(addr, "GET", "/v1/datasets/my%20%CE%BC-data/targets", None).unwrap();
    assert_eq!(targets.status, 200, "{}", targets.body);
    assert!(targets.body.contains("bonus"));
    let bad_escape = http_request(addr, "GET", "/v1/datasets/my%2/targets", None).unwrap();
    assert_eq!(bad_escape.status, 400, "{}", bad_escape.body);
    assert!(bad_escape.body.contains("percent-encoding"));
    server.shutdown();
}

#[test]
fn broken_backing_file_maps_to_503_not_400() {
    let dir = std::env::temp_dir().join(format!("charles_e2e_503_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = example1();
    let src = dir.join("v1.csv");
    let dst = dir.join("v2.csv");
    charles_relation::write_csv_path(&scenario.source, &src).unwrap();
    charles_relation::write_csv_path(&scenario.target, &dst).unwrap();

    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
    manager.register_csv("disk", &src, &dst, Some("name".into()));
    let mut server = start(Arc::clone(&manager));
    let addr = server.local_addr();

    let ok = http_request(
        addr,
        "POST",
        "/v1/datasets/disk/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);

    // Break the backing file, evict, and re-query: a server-state 503,
    // not a client-error 400.
    std::fs::remove_file(&src).unwrap();
    manager.evict("disk");
    let broken = http_request(
        addr,
        "POST",
        "/v1/datasets/disk/query",
        Some(&query_body("bonus")),
    )
    .unwrap();
    assert_eq!(broken.status, 503, "{}", broken.body);
    assert!(broken.body.contains("\"code\":\"dataset_unavailable\""));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_agree() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                (0..3)
                    .map(|_| {
                        let response = http_request(
                            addr,
                            "POST",
                            "/v1/datasets/demo/query",
                            Some(&query_body("bonus")),
                        )
                        .unwrap();
                        assert_eq!(response.status, 200, "{}", response.body);
                        let mut doc = Json::parse(&response.body).unwrap();
                        if let Json::Obj(pairs) = &mut doc {
                            pairs.retain(|(k, _)| k != "elapsed_ms");
                        }
                        doc.encode()
                    })
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let all: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    for pair in all.windows(2) {
        assert_eq!(pair[0], pair[1], "concurrent served answers must agree");
    }
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    for i in 0..3 {
        let body = query_body("bonus");
        write!(
            stream,
            "POST /v1/datasets/demo/query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        stream.flush().unwrap();
        // Read exactly one response: head + Content-Length body.
        let response = read_one_response(&mut stream);
        assert!(response.contains("200 OK"), "request {i}: {response}");
        assert!(response.contains("\"summaries\""), "request {i}");
    }
    server.shutdown();
}

/// Read one HTTP response (head + exact Content-Length body) from a
/// keep-alive stream.
fn read_one_response(stream: &mut TcpStream) -> String {
    use std::io::Read;
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Head: read until CRLFCRLF.
    while !buf.ends_with(b"\r\n\r\n") {
        assert_ne!(stream.read(&mut byte).unwrap(), 0, "unexpected EOF in head");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        })
        .map(|(_, v)| v.trim().parse().unwrap())
        .expect("Content-Length present");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    head + &String::from_utf8(body).unwrap()
}

#[test]
fn keep_alive_client_reuses_one_connection_until_idle_timeout() {
    // A short idle timeout so the close side of the contract is testable.
    let manager = demo_manager();
    let mut server = Server::start(
        manager,
        ServerConfig::default()
            .with_workers(2)
            .with_idle_timeout(std::time::Duration::from_millis(300)),
    )
    .unwrap();
    let addr = server.local_addr();

    // N sequential requests on ONE connection get N responses, and the
    // server does not close in between (a close would surface as an EOF
    // error on the next exchange).
    let mut client = HttpClient::connect(addr).unwrap();
    let mut bodies = Vec::new();
    for i in 0..4 {
        let response = client
            .request(
                "POST",
                "/v1/datasets/demo/query",
                Some(&query_body("bonus")),
            )
            .unwrap_or_else(|e| panic!("request {i} on keep-alive connection: {e}"));
        assert_eq!(response.status, 200, "request {i}: {}", response.body);
        assert!(!client.is_closed(), "server must keep the connection open");
        let mut doc = Json::parse(&response.body).unwrap();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "elapsed_ms");
        }
        bodies.push(doc.encode());
    }
    for pair in bodies.windows(2) {
        assert_eq!(pair[0], pair[1], "keep-alive answers must agree");
    }

    // Go idle past the timeout: the server's reaper closes the
    // connection, and the next request must ride a transparent reconnect
    // — long-lived coordinator→worker channels depend on this — instead
    // of surfacing a stale-close error.
    std::thread::sleep(std::time::Duration::from_millis(800));
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    assert_eq!(client.reconnects(), 0);
    let after_idle = client
        .request(
            "POST",
            "/v1/datasets/demo/query",
            Some(&query_body("bonus")),
        )
        .expect("stale keep-alive connection must transparently reconnect");
    assert_eq!(after_idle.status, 200, "{}", after_idle.body);
    assert_eq!(
        client.reconnects(),
        1,
        "the retry must have replaced the reaped connection"
    );
    assert!(!client.is_closed());
    // The answer over the fresh connection is the same bytes.
    let mut doc = Json::parse(&after_idle.body).unwrap();
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "elapsed_ms");
    }
    assert_eq!(doc.encode(), bodies[0]);

    // And the client keeps serving on the replaced connection.
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(client.reconnects(), 1, "no spurious reconnects");
    server.shutdown();
}

#[test]
fn sharded_dataset_over_the_wire_matches_unsharded() {
    let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
    let scenario = example1();
    let pair = charles_relation::SnapshotPair::align(scenario.source, scenario.target).unwrap();
    manager.register_pair("plain", pair.clone());
    manager.register("sharded", DatasetSpec::sharded(DatasetSpec::Pair(pair), 3));
    let mut server = start(Arc::clone(&manager));
    let addr = server.local_addr();

    let strip = |body: &str| -> String {
        let mut doc = Json::parse(body).unwrap();
        match &mut doc {
            Json::Obj(pairs) => pairs.retain(|(k, _)| k != "elapsed_ms"),
            _ => panic!("object expected"),
        }
        if let Some(Json::Arr(results)) = doc.get("results").cloned() {
            let stripped: Vec<Json> = results
                .into_iter()
                .map(|mut r| {
                    if let Json::Obj(pairs) = &mut r {
                        pairs.retain(|(k, _)| k != "elapsed_ms");
                    }
                    r
                })
                .collect();
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if k == "results" {
                        *v = Json::Arr(stripped.clone());
                    }
                }
            }
        }
        doc.encode()
    };
    let exchange = |dataset: &str, op: &str, body: &str| -> String {
        let response = http_request(
            addr,
            "POST",
            &format!("/v1/datasets/{dataset}/{op}"),
            Some(body),
        )
        .unwrap();
        assert_eq!(response.status, 200, "{dataset}/{op}: {}", response.body);
        strip(&response.body)
    };

    // run_query, run_multi, and sweep_alpha must be byte-for-byte equal
    // between the sharded and unsharded registrations.
    let query = query_body("bonus");
    assert_eq!(
        exchange("sharded", "query", &query),
        exchange("plain", "query", &query)
    );
    let multi = r#"{"queries":[{"target":"bonus"},{"target":"bonus","alpha":1.0}]}"#;
    assert_eq!(
        exchange("sharded", "multi", multi),
        exchange("plain", "multi", multi)
    );
    let sweep = r#"{"query":{"target":"bonus"},"alphas":[0.0,0.25,0.5,1.0]}"#;
    assert_eq!(
        exchange("sharded", "sweep", sweep),
        exchange("plain", "sweep", sweep)
    );

    // The shard count is observable over the wire.
    let stats = http_request(addr, "GET", "/v1/datasets/sharded/stats", None).unwrap();
    assert_eq!(stats.status, 200, "{}", stats.body);
    let doc = Json::parse(&stats.body).unwrap();
    assert_eq!(doc.get("shards").unwrap().as_usize(), Some(3));
    let plain_stats = http_request(addr, "GET", "/v1/datasets/plain/stats", None).unwrap();
    assert_eq!(
        Json::parse(&plain_stats.body)
            .unwrap()
            .get("shards")
            .unwrap()
            .as_usize(),
        Some(1)
    );

    // Evicting the sharded dataset releases every shard plane: nothing of
    // it stays resident.
    let before = manager.resident_sessions();
    let evicted = http_request(addr, "POST", "/v1/datasets/sharded/evict", None).unwrap();
    assert_eq!(evicted.status, 200, "{}", evicted.body);
    assert!(evicted.body.contains("\"evicted\":true"));
    assert_eq!(manager.resident_sessions(), before - 1);
    assert!(!manager.dataset_stats("sharded").unwrap().resident);
    assert_eq!(manager.dataset_stats("sharded").unwrap().approx_bytes, 0);

    // Re-opening after eviction still agrees with the unsharded answers.
    assert_eq!(
        exchange("sharded", "query", &query),
        exchange("plain", "query", &query)
    );
    server.shutdown();
}

#[test]
fn worker_shard_ops_serve_bit_exact_statistics() {
    use charles_relation::RowRange;
    let manager = demo_manager();
    let session = manager.open_or_get("demo").unwrap();
    let mut server = start(Arc::clone(&manager));
    let addr = server.local_addr();

    let rpc = |request: &charles_server::Request| -> charles_server::HttpResponse {
        http_request(addr, "POST", "/v1/rpc", Some(&request.to_json().encode())).unwrap()
    };
    let tran = vec!["bonus".to_string()];
    let range = RowRange::new(0, session.pair().len());

    // Phase A over the wire == phase A computed directly, to the bit.
    let expected = session.shard_column_moments("bonus", &tran, range).unwrap();
    let response = rpc(&charles_server::Request::ShardMoments {
        dataset: "demo".into(),
        target: "bonus".into(),
        tran_attrs: tran.clone(),
        start: 0,
        len: range.len(),
    });
    assert_eq!(response.status, 200, "{}", response.body);
    let moments =
        charles_server::WireColumnMoments::from_json(&Json::parse(&response.body).unwrap())
            .unwrap()
            .moments;
    assert_eq!(moments.rows, expected.rows);
    assert_eq!(moments.finite, expected.finite);
    for (a, b) in moments.max_abs.iter().zip(expected.max_abs.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Phase B under the merged scales, ditto.
    let scales = expected.validated_scales(1).unwrap();
    let expected_gram = session
        .shard_gram_partial("bonus", &tran, &scales, range)
        .unwrap();
    let response = rpc(&charles_server::Request::ShardGram {
        dataset: "demo".into(),
        target: "bonus".into(),
        tran_attrs: tran.clone(),
        scales: scales.clone(),
        start: 0,
        len: range.len(),
    });
    assert_eq!(response.status, 200, "{}", response.body);
    let partial = charles_server::WireGramPartial::from_json(&Json::parse(&response.body).unwrap())
        .unwrap()
        .partial;
    assert_eq!(partial, expected_gram);

    // Signal slices, ditto.
    let (delta, rel_delta) = session.shard_signal_slice("bonus", range).unwrap();
    let response = rpc(&charles_server::Request::ShardSignals {
        dataset: "demo".into(),
        target: "bonus".into(),
        start: 0,
        len: range.len(),
    });
    assert_eq!(response.status, 200, "{}", response.body);
    let slice =
        charles_server::WireSignalSlice::from_json(&Json::parse(&response.body).unwrap()).unwrap();
    for (a, b) in slice.delta.iter().zip(delta.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in slice.rel_delta.iter().zip(rel_delta.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Off-grid and out-of-bounds ranges are typed client errors.
    let off_grid = rpc(&charles_server::Request::ShardSignals {
        dataset: "demo".into(),
        target: "bonus".into(),
        start: 5,
        len: 2,
    });
    assert_eq!(off_grid.status, 400, "{}", off_grid.body);
    assert!(off_grid.body.contains("block grid"), "{}", off_grid.body);
    let beyond = rpc(&charles_server::Request::ShardMoments {
        dataset: "demo".into(),
        target: "bonus".into(),
        tran_attrs: tran,
        start: 0,
        len: 10_000,
    });
    assert_eq!(beyond.status, 400, "{}", beyond.body);
    // start + len overflowing usize must be a 400 in every build
    // profile, not a wrap (release) or panic (debug). The JSON layer
    // already bounds wire integers at 2^53, so this is only reachable
    // through the public `dispatch` API — exercised directly.
    let (status, envelope) = charles_server::dispatch(
        &manager,
        &charles_server::Request::ShardSignals {
            dataset: "demo".into(),
            target: "bonus".into(),
            start: usize::MAX,
            len: 2,
        },
    )
    .unwrap_err();
    assert_eq!(status, 400);
    assert!(
        envelope.message.contains("overflow"),
        "{}",
        envelope.message
    );
    server.shutdown();
}

#[test]
fn remote_dataset_spec_answers_like_the_plain_spec() {
    use charles_core::DatasetSpec;
    use charles_server::{remote_dataset_spec, upload_csv};

    // CSV text is the shared currency: workers and the coordinator's
    // local copy parse the same bytes, so answers can be compared
    // byte-for-byte.
    let scenario = example1();
    let mut source_csv = Vec::new();
    let mut target_csv = Vec::new();
    charles_relation::write_csv(&scenario.source, &mut source_csv).unwrap();
    charles_relation::write_csv(&scenario.target, &mut target_csv).unwrap();
    let source_csv = String::from_utf8(source_csv).unwrap();
    let target_csv = String::from_utf8(target_csv).unwrap();

    // Two loopback workers, each hosting the dataset.
    let mut workers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let server = start(Arc::new(SessionManager::new(ManagerConfig::default())));
        let addr = server.local_addr().to_string();
        upload_csv(&addr, "demo", &source_csv, &target_csv, Some("name")).unwrap();
        workers.push(server);
        addrs.push(addr);
    }

    // Coordinator manager: the same CSV text registered plain and
    // remote-backed under two names.
    let inline = |sc: &str, tc: &str| DatasetSpec::CsvInline {
        source: sc.to_string(),
        target: tc.to_string(),
        key: Some("name".to_string()),
    };
    let manager = SessionManager::new(ManagerConfig::default());
    manager.register("plain", inline(&source_csv, &target_csv));
    manager.register(
        "remote",
        remote_dataset_spec(inline(&source_csv, &target_csv), "demo", addrs.clone(), 0),
    );
    // shards = 0 means one per worker; an explicit count is reported
    // as-is — the registry's `shards` must match the layout the opened
    // session actually uses.
    assert_eq!(manager.dataset_stats("remote").unwrap().shards, 2);
    manager.register(
        "remote_wide",
        remote_dataset_spec(inline(&source_csv, &target_csv), "demo", addrs, 5),
    );
    assert_eq!(manager.dataset_stats("remote_wide").unwrap().shards, 5);
    assert_eq!(
        manager.open_or_get("remote_wide").unwrap().shard_count(),
        5,
        "registry stats and session layout must agree"
    );

    let rankings = |name: &str| -> Vec<(String, u64)> {
        manager
            .open_or_get(name)
            .unwrap()
            .run(&Query::new("bonus"))
            .unwrap()
            .summaries
            .iter()
            .map(|s| (s.to_string(), s.scores.score.to_bits()))
            .collect()
    };
    let plain = rankings("plain");
    assert!(!plain.is_empty());
    assert_eq!(
        rankings("remote"),
        plain,
        "remote-backed dataset must answer byte-identically"
    );
    let remote_session = manager.open_or_get("remote").unwrap();
    assert_eq!(remote_session.shard_count(), 2);

    // Eviction + re-open re-dials the workers and still agrees.
    assert!(manager.evict("remote"));
    assert_eq!(rankings("remote"), plain);
    for server in &mut workers {
        server.shutdown();
    }
}

#[test]
fn graceful_shutdown_stops_serving() {
    let mut server = start(demo_manager());
    let addr = server.local_addr();
    let ok = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);

    server.shutdown();
    server.shutdown(); // idempotent

    // After shutdown the listener is gone: either the connect fails or the
    // connection is dropped without a response.
    match http_request(addr, "GET", "/healthz", None) {
        Err(_) => {}
        Ok(response) => assert_ne!(response.status, 200, "served after shutdown"),
    }
}

#[test]
fn backpressure_replies_503_when_saturated() {
    // One worker, queue bound of 1: occupy the worker with a half-sent
    // request, park one connection in the queue, and the next connection
    // must be refused with 503 rather than queued unboundedly.
    let manager = demo_manager();
    let mut server = Server::start(
        manager,
        ServerConfig::default().with_workers(1).with_max_pending(1),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut busy = TcpStream::connect(addr).unwrap();
    busy.write_all(b"POST /v1/datasets/demo/query HTTP/1.1\r\n")
        .unwrap();
    busy.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let _parked = TcpStream::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));

    let refused = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(refused.body.contains("\"code\":\"overloaded\""));
    drop(busy);
    server.shutdown();
}
