//! Forbes-billionaires-style scenario (the paper's "additional datasets"
//! reference [2]).
//!
//! The real Forbes list is not redistributable; this generator produces an
//! analogous wealth table (rank, name, net worth, age, country, industry)
//! and evolves `net_worth` with an industry-structured market policy —
//! the kind of latent semantics one would hope to recover from two
//! consecutive list editions.

use crate::names::entity_names;
use crate::policy::{Policy, PolicyRule, Scenario};
use charles_relation::{Expr, Predicate, RelationError, Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Industry pool with Pareto-ish wealth scales.
const INDUSTRIES: [(&str, f64); 6] = [
    ("Technology", 18.0),
    ("Finance & Investments", 9.0),
    ("Fashion & Retail", 11.0),
    ("Energy", 7.0),
    ("Healthcare", 6.0),
    ("Real Estate", 5.0),
];

const COUNTRIES: [&str; 8] = [
    "United States",
    "China",
    "India",
    "Germany",
    "France",
    "Brazil",
    "Japan",
    "Canada",
];

/// Generate the source wealth table (`n` billionaires, deterministic per
/// seed). Net worth is in billions of dollars, one decimal, ranked
/// descending like the published list.
pub fn billionaires_table(n: usize, seed: u64) -> Result<Table, RelationError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = entity_names(n);
    let mut rows: Vec<(String, f64, i64, &str, &str)> = Vec::with_capacity(n);
    for name in names {
        let (industry, scale) = INDUSTRIES[rng.gen_range(0..INDUSTRIES.len())];
        // Heavy-tailed: exp(Exp(1)) style draw scaled per industry.
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-9);
        let worth = ((scale * (1.0 - u.ln())) * 10.0).round() / 10.0;
        let age: i64 = rng.gen_range(35..=92);
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        rows.push((name, worth.max(1.0), age, country, industry));
    }
    // Rank by descending net worth, like the published list.
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let ranks: Vec<i64> = (1..=n as i64).collect();
    let names: Vec<String> = rows.iter().map(|r| r.0.clone()).collect();
    let worths: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let ages: Vec<i64> = rows.iter().map(|r| r.2).collect();
    let countries: Vec<&str> = rows.iter().map(|r| r.3).collect();
    let industries: Vec<&str> = rows.iter().map(|r| r.4).collect();
    TableBuilder::new(format!("billionaires-{n}"))
        .int_col("rank", &ranks)
        .str_col("name", &names)
        .float_col("net_worth", &worths)
        .int_col("age", &ages)
        .str_col("country", &countries)
        .str_col("industry", &industries)
        .key("name")
        .build()
}

/// The latent market policy for one list edition: tech rallies 15%,
/// finance gains 6% plus a flat $0.5B of fund inflows, energy corrects
/// −8%, everything else drifts up 2%.
pub fn market_policy() -> Policy {
    Policy::new(
        "net_worth",
        vec![
            PolicyRule::update(
                "tech +15%",
                Predicate::eq("industry", "Technology"),
                Expr::affine("net_worth", 1.15, 0.0),
            ),
            PolicyRule::update(
                "finance +6% + 0.5",
                Predicate::eq("industry", "Finance & Investments"),
                Expr::affine("net_worth", 1.06, 0.5),
            ),
            PolicyRule::update(
                "energy −8%",
                Predicate::eq("industry", "Energy"),
                Expr::affine("net_worth", 0.92, 0.0),
            ),
            PolicyRule::update(
                "drift +2%",
                Predicate::True,
                Expr::affine("net_worth", 1.02, 0.0),
            ),
        ],
    )
}

/// The full billionaires scenario.
pub fn billionaires(n: usize, seed: u64) -> Scenario {
    let source = billionaires_table(n, seed).expect("generated list is well-formed");
    Scenario::evolve(format!("billionaires-{n}"), source, market_policy())
        .expect("market policy applies cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_by_descending_worth() {
        let t = billionaires_table(200, 5).unwrap();
        let worth = t.numeric("net_worth").unwrap();
        for w in worth.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(t.value(0, "rank").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn policy_respected() {
        let s = billionaires(150, 6);
        for r in 0..s.len() {
            let industry = s.source.value(r, "industry").unwrap();
            let old = s.source.value(r, "net_worth").unwrap().as_f64().unwrap();
            let new = s.target.value(r, "net_worth").unwrap().as_f64().unwrap();
            let want = match industry.as_str().unwrap() {
                "Technology" => 1.15 * old,
                "Finance & Investments" => 1.06 * old + 0.5,
                "Energy" => 0.92 * old,
                _ => 1.02 * old,
            };
            assert!((new - want).abs() < 1e-6, "row {r}");
        }
    }

    #[test]
    fn wealth_positive_and_heavy_tailed() {
        let t = billionaires_table(500, 7).unwrap();
        let worth = t.numeric("net_worth").unwrap();
        assert!(worth.iter().all(|&w| w >= 1.0));
        let max = worth.iter().fold(0.0f64, |m, &w| m.max(w));
        let median = {
            let mut s = worth.clone();
            s.sort_by(|a, b| a.total_cmp(b));
            s[s.len() / 2]
        };
        assert!(max > 4.0 * median, "max {max}, median {median}");
    }

    #[test]
    fn deterministic() {
        assert!(billionaires_table(60, 11)
            .unwrap()
            .content_eq(&billionaires_table(60, 11).unwrap()));
    }
}
