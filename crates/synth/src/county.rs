//! Montgomery-County-style payroll scenario (paper Section 3).
//!
//! The demonstration dataset [5] is the public salary file of Montgomery
//! County, MD: *"all active, permanent employees ... over 8 attributes,
//! including Department, Department Name, Division, Gender, Base Salary,
//! Overtime Pay, Longevity Pay, and Grade"*. The real file is not
//! redistributable offline, so this generator produces a statistically
//! analogous population with exactly that schema, then evolves
//! `base_salary` with a department/grade-structured pay policy (modeled on
//! how county pay plans actually work: general COLA plus targeted uplifts
//! for public-safety unions and senior grades).

use crate::names::entity_names;
use crate::policy::{Policy, PolicyRule, Scenario};
use charles_relation::{CmpOp, Expr, Predicate, RelationError, Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Departments: (code, full name, division pool, salary base).
const DEPARTMENTS: [(&str, &str, [&str; 3], f64); 6] = [
    (
        "POL",
        "Department of Police",
        [
            "Patrol Services",
            "Investigative Services",
            "Management Services",
        ],
        72_000.0,
    ),
    (
        "FRS",
        "Fire and Rescue Service",
        ["Operations", "Fire Prevention", "Emergency Communications"],
        68_000.0,
    ),
    (
        "HHS",
        "Department of Health and Human Services",
        [
            "Public Health",
            "Children Youth and Families",
            "Aging and Disability",
        ],
        58_000.0,
    ),
    (
        "DOT",
        "Department of Transportation",
        ["Highway Services", "Transit Services", "Parking Management"],
        55_000.0,
    ),
    (
        "LIB",
        "Public Libraries",
        [
            "Branch Operations",
            "Collection Management",
            "Administration",
        ],
        48_000.0,
    ),
    (
        "FIN",
        "Department of Finance",
        ["Treasury", "Controller", "Risk Management"],
        62_000.0,
    ),
];

/// Generate the source payroll table (`n` employees, deterministic per
/// seed). Schema: name (key), department, department_name, division,
/// gender, grade, base_salary, overtime_pay, longevity_pay.
pub fn county_table(n: usize, seed: u64) -> Result<Table, RelationError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = entity_names(n);
    let mut department = Vec::with_capacity(n);
    let mut department_name = Vec::with_capacity(n);
    let mut division = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);
    let mut grade = Vec::with_capacity(n);
    let mut base_salary = Vec::with_capacity(n);
    let mut overtime_pay = Vec::with_capacity(n);
    let mut longevity_pay = Vec::with_capacity(n);
    for _ in 0..n {
        let (code, full, divisions, base) = DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())];
        let grade_num: i64 = rng.gen_range(12..=30);
        // Salary grows ~4% per grade step with modest noise; rounded to
        // dollars like the real payroll file.
        let salary = (base * 1.04f64.powi((grade_num - 12) as i32)
            + rng.gen_range(-2_000.0..2_000.0))
        .round();
        // Public-safety departments accrue far more overtime.
        let ot_scale = if code == "POL" || code == "FRS" {
            0.18
        } else {
            0.04
        };
        let overtime = (salary * ot_scale * rng.gen_range(0.0..2.0)).round();
        // Longevity pay: service-step bonus after 10 years. Service is a
        // latent variable (not in the schema), so longevity is *noisy*
        // with respect to the published attributes — the real file behaves
        // the same way, and it keeps the pay policy identifiable (no
        // deterministic combination of columns can impersonate the grade
        // rule).
        let service: i64 = rng.gen_range(0..=30);
        let longevity = if service >= 10 {
            (service as f64 * 120.0).round()
        } else {
            0.0
        };
        department.push(code);
        department_name.push(full);
        division.push(divisions[rng.gen_range(0..divisions.len())]);
        gender.push(if rng.gen_bool(0.45) { "F" } else { "M" });
        grade.push(grade_num);
        base_salary.push(salary);
        overtime_pay.push(overtime);
        longevity_pay.push(longevity);
    }
    TableBuilder::new(format!("county-payroll-{n}"))
        .str_col("name", &names)
        .str_col("department", &department)
        .str_col("department_name", &department_name)
        .str_col("division", &division)
        .str_col("gender", &gender)
        .int_col("grade", &grade)
        .float_col("base_salary", &base_salary)
        .float_col("overtime_pay", &overtime_pay)
        .float_col("longevity_pay", &longevity_pay)
        .key("name")
        .build()
}

/// The latent FY pay policy used for the county scenario:
/// - police officers get 4% + $1500 (union agreement),
/// - fire & rescue get 3.5% + $1000,
/// - senior grades (≥ 24) elsewhere get 3%,
/// - everyone else gets a flat 2% COLA.
pub fn county_policy() -> Policy {
    Policy::new(
        "base_salary",
        vec![
            PolicyRule::update(
                "POL: 4% + $1500",
                Predicate::eq("department", "POL"),
                Expr::affine("base_salary", 1.04, 1500.0),
            ),
            PolicyRule::update(
                "FRS: 3.5% + $1000",
                Predicate::eq("department", "FRS"),
                Expr::affine("base_salary", 1.035, 1000.0),
            ),
            PolicyRule::update(
                "grade ≥ 24: 3%",
                Predicate::cmp("grade", CmpOp::Ge, 24),
                Expr::affine("base_salary", 1.03, 0.0),
            ),
            PolicyRule::update(
                "COLA 2%",
                Predicate::True,
                Expr::affine("base_salary", 1.02, 0.0),
            ),
        ],
    )
}

/// The full county scenario: payroll evolved by [`county_policy`].
pub fn county(n: usize, seed: u64) -> Scenario {
    let source = county_table(n, seed).expect("generated payroll is well-formed");
    Scenario::evolve(format!("county-{n}"), source, county_policy())
        .expect("county policy applies cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper_description() {
        let t = county_table(50, 1).unwrap();
        let names = t.schema().names();
        for attr in [
            "department",
            "department_name",
            "division",
            "gender",
            "grade",
            "base_salary",
            "overtime_pay",
            "longevity_pay",
        ] {
            assert!(names.contains(&attr), "missing {attr}");
        }
        assert_eq!(t.width(), 9); // 8 data attributes + key
    }

    #[test]
    fn department_name_consistent_with_code() {
        let t = county_table(300, 2).unwrap();
        for r in 0..t.height() {
            let code = t.value(r, "department").unwrap();
            let full = t.value(r, "department_name").unwrap();
            let expected = DEPARTMENTS
                .iter()
                .find(|(c, ..)| *c == code.as_str().unwrap())
                .unwrap()
                .1;
            assert_eq!(full.as_str().unwrap(), expected);
        }
    }

    #[test]
    fn policy_respected() {
        let s = county(400, 3);
        for r in 0..s.len() {
            let dept = s.source.value(r, "department").unwrap();
            let grade = s.source.value(r, "grade").unwrap().as_i64().unwrap();
            let old = s.source.value(r, "base_salary").unwrap().as_f64().unwrap();
            let new = s.target.value(r, "base_salary").unwrap().as_f64().unwrap();
            let want = match dept.as_str().unwrap() {
                "POL" => 1.04 * old + 1500.0,
                "FRS" => 1.035 * old + 1000.0,
                _ if grade >= 24 => 1.03 * old,
                _ => 1.02 * old,
            };
            assert!((new - want).abs() < 1e-6, "row {r}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert!(county_table(80, 9)
            .unwrap()
            .content_eq(&county_table(80, 9).unwrap()));
    }

    #[test]
    fn longevity_is_stepwise_and_not_salary_determined() {
        let t = county_table(500, 4).unwrap();
        let longevity = t.numeric("longevity_pay").unwrap();
        // Mix of zero (service < 10) and positive step values.
        assert!(longevity.contains(&0.0));
        assert!(longevity.iter().any(|&l| l > 0.0));
        // All positive values are multiples of the $120 service step.
        for &l in longevity.iter().filter(|&&l| l > 0.0) {
            assert_eq!(l % 120.0, 0.0, "longevity {l}");
        }
        // Not a function of salary: same salary band, different longevity.
        let corr = charles_numerics::pearson(&t.numeric("base_salary").unwrap(), &longevity)
            .unwrap()
            .abs();
        assert!(corr < 0.5, "longevity correlates with salary: {corr}");
    }
}
