//! The paper's employee-bonus scenario (Example 1, Figure 1) and scaled
//! variants of it.

use crate::names::entity_names;
use crate::policy::{Policy, PolicyRule, Scenario};
use charles_relation::{CmpOp, Expr, Predicate, RelationError, Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's 2016 snapshot, verbatim (Figure 1a).
pub fn figure1_source() -> Table {
    TableBuilder::new("salaries-2016")
        .str_col(
            "name",
            &[
                "Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank",
            ],
        )
        .str_col("gen", &["F", "M", "F", "M", "F", "M", "M", "F", "M"])
        .str_col(
            "edu",
            &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
        )
        .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
        .float_col(
            "salary",
            &[
                230_000.0, 250_000.0, 160_000.0, 130_000.0, 110_000.0, 150_000.0, 120_000.0,
                150_000.0, 210_000.0,
            ],
        )
        .float_col(
            "bonus",
            &[
                23_000.0, 25_000.0, 16_000.0, 13_000.0, 11_000.0, 15_000.0, 12_000.0, 15_000.0,
                21_000.0,
            ],
        )
        .key("name")
        .build()
        .expect("static Figure 1 data is well-formed")
}

/// The paper's bonus policy: R1 (PhD: 5% + $1000), R2 (MS with ≥ 3 years:
/// 4% + $800), R3 (MS with < 3 years: 3% + $400); BS unchanged.
pub fn example1_policy() -> Policy {
    Policy::new(
        "bonus",
        vec![
            PolicyRule::update(
                "R1: PhD → 5% + $1000",
                Predicate::eq("edu", "PhD"),
                Expr::affine("bonus", 1.05, 1000.0),
            ),
            PolicyRule::update(
                "R2: MS, exp ≥ 3 → 4% + $800",
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Ge, 3)),
                Expr::affine("bonus", 1.04, 800.0),
            ),
            PolicyRule::update(
                "R3: MS, exp < 3 → 3% + $400",
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Lt, 3)),
                Expr::affine("bonus", 1.03, 400.0),
            ),
            PolicyRule::keep("BS unchanged", Predicate::eq("edu", "BS")),
        ],
    )
}

/// The complete Example-1 scenario: Figure 1a evolved into Figure 1b.
pub fn example1() -> Scenario {
    Scenario::evolve("example1", figure1_source(), example1_policy())
        .expect("Example 1 policy applies cleanly")
}

/// A scaled employee population with the same schema and the same latent
/// policy as Example 1.
///
/// Education, experience, gender, and salary are drawn from realistic
/// marginals; `bonus` starts as the 2016 flat 10% of salary (exactly as in
/// the paper's setup). Deterministic for a given `(n, seed)`.
pub fn employees(n: usize, seed: u64) -> Scenario {
    let source = employee_table(n, seed).expect("generated table is well-formed");
    Scenario::evolve(format!("employees-{n}"), source, example1_policy())
        .expect("example policy applies to generated employees")
}

/// Generate only the source table (useful for custom policies).
pub fn employee_table(n: usize, seed: u64) -> Result<Table, RelationError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = entity_names(n);
    let mut gens = Vec::with_capacity(n);
    let mut edus = Vec::with_capacity(n);
    let mut exps = Vec::with_capacity(n);
    let mut salaries = Vec::with_capacity(n);
    let mut bonuses = Vec::with_capacity(n);
    for _ in 0..n {
        let gen = if rng.gen_bool(0.5) { "F" } else { "M" };
        let edu = match rng.gen_range(0..10) {
            0..=2 => "PhD",
            3..=6 => "MS",
            _ => "BS",
        };
        let exp: i64 = rng.gen_range(1..=10);
        // Salary scales with education and experience plus noise, rounded
        // to $1000 as payroll data usually is.
        let base = match edu {
            "PhD" => 180_000.0,
            "MS" => 120_000.0,
            _ => 90_000.0,
        };
        let salary = ((base + 8_000.0 * exp as f64 + rng.gen_range(-10_000.0..10_000.0)) / 1_000.0)
            .round()
            * 1_000.0;
        let bonus = salary * 0.10; // the 2016 flat rate from the paper
        gens.push(gen);
        edus.push(edu);
        exps.push(exp);
        salaries.push(salary);
        bonuses.push(bonus);
    }
    TableBuilder::new(format!("employees-{n}"))
        .str_col("name", &names)
        .str_col("gen", &gens)
        .str_col("edu", &edus)
        .int_col("exp", &exps)
        .float_col("salary", &salaries)
        .float_col("bonus", &bonuses)
        .key("name")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::Value;

    #[test]
    fn figure1_matches_paper_exactly() {
        let t = figure1_source();
        assert_eq!(t.height(), 9);
        assert_eq!(t.width(), 6);
        assert_eq!(t.value(0, "name").unwrap(), Value::str("Anne"));
        assert_eq!(t.value(0, "bonus").unwrap(), Value::Float(23_000.0));
        assert_eq!(t.value(8, "salary").unwrap(), Value::Float(210_000.0));
        // 2016: bonus is a flat 10% of salary for everyone.
        for r in 0..9 {
            let s = t.value(r, "salary").unwrap().as_f64().unwrap();
            let b = t.value(r, "bonus").unwrap().as_f64().unwrap();
            assert!((b - 0.1 * s).abs() < 1e-9);
        }
    }

    #[test]
    fn example1_target_matches_figure_1b() {
        let s = example1();
        // Paper Figure 1b values (highlighted changes).
        let expected = [
            25_150.0, 27_250.0, 17_440.0, 13_790.0, 11_000.0, 16_400.0, 12_000.0, 16_400.0,
            23_050.0,
        ];
        for (r, &want) in expected.iter().enumerate() {
            let got = s.target.value(r, "bonus").unwrap().as_f64().unwrap();
            assert!((got - want).abs() < 1e-6, "row {r}: got {got}, want {want}");
        }
        // Cathy and James (BS) unchanged, as the paper highlights.
        assert_eq!(
            s.source.value(4, "bonus").unwrap(),
            s.target.value(4, "bonus").unwrap()
        );
    }

    #[test]
    fn scaled_scenario_deterministic() {
        let a = employees(100, 7);
        let b = employees(100, 7);
        assert!(a.source.content_eq(&b.source));
        assert!(a.target.content_eq(&b.target));
        let c = employees(100, 8);
        assert!(!c.source.content_eq(&a.source));
    }

    #[test]
    fn scaled_scenario_respects_policy() {
        let s = employees(200, 42);
        for r in 0..s.len() {
            let edu = s.source.value(r, "edu").unwrap();
            let exp = s.source.value(r, "exp").unwrap().as_i64().unwrap();
            let old = s.source.value(r, "bonus").unwrap().as_f64().unwrap();
            let new = s.target.value(r, "bonus").unwrap().as_f64().unwrap();
            let want = match edu.as_str().unwrap() {
                "PhD" => 1.05 * old + 1000.0,
                "MS" if exp >= 3 => 1.04 * old + 800.0,
                "MS" => 1.03 * old + 400.0,
                _ => old,
            };
            assert!((new - want).abs() < 1e-6, "row {r}");
        }
    }

    #[test]
    fn generated_population_has_variety() {
        let t = employee_table(500, 1).unwrap();
        assert_eq!(t.column_by_name("edu").unwrap().distinct_count(), 3);
        assert_eq!(t.column_by_name("gen").unwrap().distinct_count(), 2);
        assert!(t.column_by_name("exp").unwrap().distinct_count() >= 8);
        let salaries = t.numeric("salary").unwrap();
        assert!(salaries.iter().all(|&s| s > 50_000.0 && s < 350_000.0));
    }
}
