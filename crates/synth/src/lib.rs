//! # charles-synth
//!
//! Synthetic evolving-database scenarios with **known ground truth** for
//! the ChARLES experiments.
//!
//! The paper demonstrates on the Montgomery County MD payroll file and the
//! Forbes billionaires list; neither is redistributable offline, so this
//! crate generates statistically analogous populations with the same
//! schemas, evolves them with explicit latent policies (first-match rule
//! lists over `UPDATE` statements), and exposes the policies so recovery
//! quality can be *measured* rather than eyeballed:
//!
//! - [`employee::example1`] — the paper's Figure 1, verbatim, including
//!   the exact Figure 1b target values;
//! - [`employee::employees`] — the same latent policy over a scaled
//!   population;
//! - [`county::county`] — the 8-attribute county payroll with a
//!   department/grade pay policy;
//! - [`billionaires::billionaires`] — a wealth list with an
//!   industry-structured market policy;
//! - [`noise::perturb`] — out-of-policy contamination for robustness
//!   experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod billionaires;
pub mod county;
pub mod employee;
pub mod names;
pub mod noise;
pub mod policy;

pub use billionaires::{billionaires, billionaires_table, market_policy};
pub use county::{county, county_policy, county_table};
pub use employee::{employee_table, employees, example1, example1_policy, figure1_source};
pub use names::{entity_name, entity_names};
pub use noise::{perturb, NoiseReport};
pub use policy::{Policy, PolicyRule, Scenario};
