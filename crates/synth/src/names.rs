//! Deterministic synthetic entity names.

/// First-name pool (enough variety for readable demos).
const FIRST: [&str; 40] = [
    "Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank", "Grace", "Henry",
    "Ivy", "Jack", "Karen", "Liam", "Mona", "Noah", "Olga", "Pete", "Quinn", "Rosa", "Sam", "Tina",
    "Umar", "Vera", "Walt", "Xena", "Yuri", "Zoe", "Aaron", "Bella", "Carl", "Dana", "Eli", "Fay",
    "Gus", "Hana", "Igor", "June", "Kyle",
];

/// Surname pool.
const LAST: [&str; 30] = [
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis", "Wilson", "Moore", "Taylor",
    "Anderson", "Thomas", "Jackson", "White", "Harris", "Martin", "Thompson", "Clark", "Lewis",
    "Walker", "Hall", "Young", "King", "Wright", "Lopez", "Hill", "Scott", "Green", "Adams",
    "Baker",
];

/// Deterministic unique display name for entity `i` (cycles through
/// first × last pairs, then appends a numeric suffix to stay unique).
pub fn entity_name(i: usize) -> String {
    let first = FIRST[i % FIRST.len()];
    let last = LAST[(i / FIRST.len()) % LAST.len()];
    let cycle = i / (FIRST.len() * LAST.len());
    if cycle == 0 {
        format!("{first} {last}")
    } else {
        format!("{first} {last} {cycle}")
    }
}

/// `n` unique entity names.
pub fn entity_names(n: usize) -> Vec<String> {
    (0..n).map(entity_name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names = entity_names(5000);
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(entity_name(0), "Anne Smith");
        assert_eq!(entity_name(0), entity_name(0));
        assert_eq!(entity_names(10), entity_names(10));
    }

    #[test]
    fn cycle_suffix_applied() {
        let big = entity_name(FIRST.len() * LAST.len());
        assert!(big.ends_with(" 1"), "{big}");
    }
}
