//! Out-of-policy noise injection (experiment E6).
//!
//! Real change histories are rarely pure: a few cells get hand-edited,
//! corrected, or updated by processes outside the dominant policy. This
//! module perturbs a fraction of a snapshot's target values so experiments
//! can measure how recovery quality degrades with contamination.

use charles_relation::{RelationError, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Report of an injection pass.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// The perturbed table.
    pub table: Table,
    /// Rows whose target value was perturbed.
    pub touched: Vec<usize>,
}

/// Perturb `fraction` of rows' `attr` values multiplicatively by up to
/// ±`magnitude` (relative). Deterministic per seed; rows are chosen
/// without replacement.
pub fn perturb(
    table: &Table,
    attr: &str,
    fraction: f64,
    magnitude: f64,
    seed: u64,
) -> Result<NoiseReport, RelationError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(RelationError::InvalidArgument(format!(
            "fraction must be in [0, 1], got {fraction}"
        )));
    }
    if magnitude < 0.0 {
        return Err(RelationError::InvalidArgument(format!(
            "magnitude must be non-negative, got {magnitude}"
        )));
    }
    let n = table.height();
    let k = ((n as f64) * fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates for a without-replacement sample.
    let mut indices: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    let mut touched: Vec<usize> = indices.into_iter().take(k).collect();
    touched.sort_unstable();

    let mut out = table.clone();
    {
        let col = out.column_by_name_mut(attr)?;
        for &row in &touched {
            let old = col.get_f64(row).ok_or_else(|| {
                RelationError::Eval(format!("attribute {attr:?} null/non-numeric at row {row}"))
            })?;
            let factor = 1.0 + rng.gen_range(-magnitude..=magnitude);
            col.set(row, Value::Float(old * factor))?;
        }
    }
    Ok(NoiseReport {
        table: out,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn t() -> Table {
        TableBuilder::new("t")
            .float_col(
                "x",
                &(0..100).map(|i| 1000.0 + i as f64).collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn perturbs_exact_fraction() {
        let r = perturb(&t(), "x", 0.25, 0.5, 1).unwrap();
        assert_eq!(r.touched.len(), 25);
        // Exactly the touched rows differ.
        let orig = t();
        for row in 0..100 {
            let changed = orig.value(row, "x").unwrap() != r.table.value(row, "x").unwrap();
            assert_eq!(changed, r.touched.contains(&row), "row {row}");
        }
    }

    #[test]
    fn zero_fraction_no_change() {
        let r = perturb(&t(), "x", 0.0, 0.5, 1).unwrap();
        assert!(r.touched.is_empty());
        assert!(r.table.content_eq(&t()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = perturb(&t(), "x", 0.3, 0.2, 9).unwrap();
        let b = perturb(&t(), "x", 0.3, 0.2, 9).unwrap();
        assert_eq!(a.touched, b.touched);
        assert!(a.table.content_eq(&b.table));
        let c = perturb(&t(), "x", 0.3, 0.2, 10).unwrap();
        assert_ne!(a.touched, c.touched);
    }

    #[test]
    fn bad_arguments_rejected() {
        assert!(perturb(&t(), "x", 1.5, 0.1, 1).is_err());
        assert!(perturb(&t(), "x", 0.5, -0.1, 1).is_err());
        assert!(perturb(&t(), "nope", 0.5, 0.1, 1).is_err());
    }

    #[test]
    fn magnitude_bounds_relative_change() {
        let r = perturb(&t(), "x", 1.0, 0.1, 3).unwrap();
        let orig = t();
        for row in 0..100 {
            let old = orig.value(row, "x").unwrap().as_f64().unwrap();
            let new = r.table.value(row, "x").unwrap().as_f64().unwrap();
            assert!(((new - old) / old).abs() <= 0.1 + 1e-12);
        }
    }
}
