//! Ground-truth update policies and evolution scenarios.
//!
//! A [`Policy`] is a first-match list of update rules — the *latent
//! semantics* a ChARLES run must recover. A [`Scenario`] bundles the
//! source snapshot, the evolved target snapshot, the target attribute, and
//! the policy that produced it, so experiments can measure recovery
//! quality against known truth.

use charles_relation::{
    apply_updates, ApplyMode, Expr, Predicate, RelationError, Table, UpdateStatement,
};

/// One ground-truth rule.
#[derive(Debug, Clone)]
pub struct PolicyRule {
    /// Human-readable label (e.g. "R1: PhDs get 5% + $1000").
    pub label: String,
    /// Row filter.
    pub condition: Predicate,
    /// Update expression over *source* values; `None` = explicit
    /// "no change" rule.
    pub expr: Option<Expr>,
}

impl PolicyRule {
    /// A rule that rewrites matched rows.
    pub fn update(label: impl Into<String>, condition: Predicate, expr: Expr) -> Self {
        PolicyRule {
            label: label.into(),
            condition,
            expr: Some(expr),
        }
    }

    /// A rule that freezes matched rows (documents intentional no-change).
    pub fn keep(label: impl Into<String>, condition: Predicate) -> Self {
        PolicyRule {
            label: label.into(),
            condition,
            expr: None,
        }
    }
}

/// A first-match rule list over one target attribute.
#[derive(Debug, Clone)]
pub struct Policy {
    /// The attribute the policy rewrites.
    pub target_attr: String,
    /// Rules, first match wins.
    pub rules: Vec<PolicyRule>,
}

impl Policy {
    /// Create a policy.
    pub fn new(target_attr: impl Into<String>, rules: Vec<PolicyRule>) -> Self {
        Policy {
            target_attr: target_attr.into(),
            rules,
        }
    }

    /// Apply to a source snapshot, producing the evolved target.
    pub fn apply(&self, source: &Table) -> Result<Table, RelationError> {
        let statements: Vec<UpdateStatement> = self
            .rules
            .iter()
            .filter_map(|r| {
                r.expr.as_ref().map(|e| {
                    UpdateStatement::new(self.target_attr.clone(), e.clone(), r.condition.clone())
                })
            })
            .collect();
        Ok(apply_updates(source, &statements, ApplyMode::FirstMatch)?.table)
    }

    /// The rules as `(condition, expr)` pairs for recovery evaluation
    /// (consumed by `charles_core::recovery::TruthRule`).
    pub fn rule_pairs(&self) -> Vec<(Predicate, Option<Expr>)> {
        self.rules
            .iter()
            .map(|r| (r.condition.clone(), r.expr.clone()))
            .collect()
    }
}

/// A complete evolution scenario with known ground truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The earlier snapshot.
    pub source: Table,
    /// The later snapshot (source evolved by `policy`, possibly plus
    /// noise).
    pub target: Table,
    /// The attribute whose change the scenario is about.
    pub target_attr: String,
    /// The latent policy that produced the target.
    pub policy: Policy,
}

impl Scenario {
    /// Build by applying `policy` to `source`.
    pub fn evolve(
        name: impl Into<String>,
        source: Table,
        policy: Policy,
    ) -> Result<Self, RelationError> {
        let target = policy.apply(&source)?;
        Ok(Scenario {
            name: name.into(),
            target_attr: policy.target_attr.clone(),
            source,
            target,
            policy,
        })
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.source.height()
    }

    /// Whether the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.source.height() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::{CmpOp, TableBuilder, Value};

    fn table() -> Table {
        TableBuilder::new("t")
            .str_col("k", &["a", "b", "c"])
            .str_col("grade", &["X", "Y", "X"])
            .float_col("pay", &[100.0, 200.0, 300.0])
            .key("k")
            .build()
            .unwrap()
    }

    #[test]
    fn policy_applies_first_match() {
        let policy = Policy::new(
            "pay",
            vec![
                PolicyRule::update(
                    "X up 10%",
                    Predicate::eq("grade", "X"),
                    Expr::affine("pay", 1.1, 0.0),
                ),
                PolicyRule::update(
                    "everyone +5",
                    Predicate::True,
                    Expr::affine("pay", 1.0, 5.0),
                ),
            ],
        );
        let target = policy.apply(&table()).unwrap();
        let got = |r: usize| target.value(r, "pay").unwrap().as_f64().unwrap();
        assert!((got(0) - 110.0).abs() < 1e-9);
        assert!((got(1) - 205.0).abs() < 1e-9);
        assert!((got(2) - 330.0).abs() < 1e-9);
    }

    #[test]
    fn keep_rules_freeze_rows() {
        let policy = Policy::new(
            "pay",
            vec![
                PolicyRule::keep("X frozen", Predicate::eq("grade", "X")),
                PolicyRule::update(
                    "others double",
                    Predicate::True,
                    Expr::affine("pay", 2.0, 0.0),
                ),
            ],
        );
        // `keep` rules emit no UPDATE, but first-match semantics for
        // recovery bookkeeping still label those rows; application-wise,
        // the update statement list just skips them. Matching rows of a
        // later True rule WILL still be updated by apply() unless the keep
        // condition excludes them — so keep() is for labeling, and update
        // rules must be disjoint from kept rows.
        let policy_disjoint = Policy::new(
            "pay",
            vec![PolicyRule::update(
                "non-X double",
                Predicate::eq("grade", "X").not(),
                Expr::affine("pay", 2.0, 0.0),
            )],
        );
        let t1 = policy_disjoint.apply(&table()).unwrap();
        assert_eq!(t1.value(0, "pay").unwrap(), Value::Float(100.0));
        assert_eq!(t1.value(1, "pay").unwrap(), Value::Float(400.0));
        let pairs = policy.rule_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].1.is_none());
    }

    #[test]
    fn scenario_evolution() {
        let policy = Policy::new(
            "pay",
            vec![PolicyRule::update(
                "raise",
                Predicate::cmp("pay", CmpOp::Ge, 200.0),
                Expr::affine("pay", 1.0, 50.0),
            )],
        );
        let scenario = Scenario::evolve("test", table(), policy).unwrap();
        assert_eq!(scenario.len(), 3);
        assert!(!scenario.is_empty());
        assert_eq!(
            scenario.source.value(1, "pay").unwrap(),
            Value::Float(200.0)
        );
        assert_eq!(
            scenario.target.value(1, "pay").unwrap(),
            Value::Float(250.0)
        );
        assert_eq!(scenario.target_attr, "pay");
    }
}
