//! The Forbes-billionaires-style scenario (the paper's additional dataset
//! [2], synthesized), including a CSV round-trip: the snapshots are
//! written to disk and read back before analysis, exercising the same
//! ingestion path a real deployment would use.
//!
//! ```sh
//! cargo run --release --example billionaires
//! ```

use charles::core::{Charles, CharlesConfig, LinearModelTree, PartitionViz};
use charles::prelude::*;
use charles::synth::billionaires;

fn main() {
    let scenario = billionaires(500, 2024);
    println!("billionaires list: {} entries", scenario.len());

    // Round-trip both snapshots through CSV, like a user uploading files
    // (demo step 1).
    let dir = std::env::temp_dir().join("charles-billionaires-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("billionaires-2024.csv");
    let tgt_path = dir.join("billionaires-2025.csv");
    write_csv_path(&scenario.source, &src_path).expect("write source");
    write_csv_path(&scenario.target, &tgt_path).expect("write target");
    let source = read_csv_path(&src_path)
        .expect("read source")
        .with_key("name")
        .expect("names unique");
    let target = read_csv_path(&tgt_path)
        .expect("read target")
        .with_key("name")
        .expect("names unique");
    println!(
        "round-tripped through {} and {}\n",
        src_path.display(),
        tgt_path.display()
    );

    // Analyze net-worth evolution between the two editions.
    let config = CharlesConfig::default()
        .with_max_condition_attrs(2)
        .with_max_transform_attrs(1);
    let engine = Charles::new(source, target, "net_worth")
        .expect("snapshots align")
        .with_config(config);

    let setup = engine.setup().expect("assistant runs");
    println!("assistant condition candidates:");
    for cand in &setup.condition_candidates {
        println!("  {:<24} assoc {:.2}", cand.attr, cand.correlation);
    }
    println!();

    let result = engine.run().expect("engine runs");
    let top = result.top().expect("summaries exist");
    println!("top summary:\n{top}");
    println!("linear model tree:\n{}", LinearModelTree::from_summary(top));
    println!("partitions:\n{}", PartitionViz::from_summary(top));

    println!("(ground truth was: tech +15%, finance +6% + $0.5B, energy −8%, rest +2%)");
}
