//! The Montgomery-County-style payroll scenario at realistic scale
//! (paper Section 3's demo dataset, synthesized — see DESIGN.md §1).
//!
//! Generates a county payroll, evolves it with a department/grade pay
//! policy, recovers the policy with ChARLES, quantifies recovery against
//! the ground truth, and compares against the baseline explainers.
//!
//! ```sh
//! cargo run --release --example county_salaries
//! ```

use charles::core::{evaluate_recovery, Charles, CharlesConfig, TruthRule};
use charles::diff::{all_baselines, change_stats, update_distance};
use charles::prelude::*;
use charles::synth::county;

fn main() {
    let n = 2_000;
    let scenario = county(n, 42);
    println!(
        "county payroll: {} employees, target attribute {:?}",
        n, scenario.target_attr
    );
    println!("latent policy:");
    for rule in &scenario.policy.rules {
        println!("  - {}", rule.label);
    }
    println!();

    // Syntactic change layer: what a comparator tool would tell you.
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone())
        .expect("snapshots align");
    let stats = change_stats(&pair).expect("diff runs");
    println!(
        "syntactic diff: {} of {} rows changed ({:.1}%), {} cells",
        stats.rows_changed,
        stats.rows,
        stats.change_rate() * 100.0,
        stats.cells_changed
    );
    let dist = update_distance(&scenario.source, &scenario.target, "name").expect("same schema");
    println!(
        "update distance (Müller et al.): {} operations\n",
        dist.total()
    );

    // Semantic recovery.
    let config = CharlesConfig::default().with_k_range(1, 5);
    let engine = Charles::from_pair(pair.clone(), &scenario.target_attr)
        .expect("valid target")
        .with_config(config.clone());
    let result = engine.run().expect("engine runs");
    println!(
        "ChARLES: {} candidates evaluated in {:.2?}",
        result.stats.candidates, result.elapsed
    );
    let top = result.top().expect("summaries exist");
    println!("\ntop summary:\n{top}");

    // Quantified recovery vs ground truth.
    let rules: Vec<TruthRule> = scenario
        .policy
        .rule_pairs()
        .into_iter()
        .map(|(condition, expr)| TruthRule { condition, expr })
        .collect();
    let recovery = evaluate_recovery(top, &pair, &scenario.target_attr, &rules, &config)
        .expect("recovery evaluates");
    println!(
        "recovery: ARI {:.3}, mean rule Jaccard {:.3}, prediction NMAE {:.5}\n",
        recovery.ari, recovery.mean_rule_jaccard, recovery.prediction_nmae
    );

    // Baselines under the same score function (experiment E7's table).
    println!(
        "{:<22} {:>9} {:>17} {:>8} {:>7}",
        "explainer", "accuracy", "interpretability", "score", "units"
    );
    println!(
        "{:<22} {:>9.3} {:>17.3} {:>8.3} {:>7}",
        "ChARLES (top)",
        top.scores.accuracy,
        top.scores.interpretability,
        top.scores.score,
        top.len()
    );
    for b in all_baselines(&pair, &scenario.target_attr, &config).expect("baselines run") {
        println!(
            "{:<22} {:>9.3} {:>17.3} {:>8.3} {:>7}",
            b.name,
            b.scores.accuracy,
            b.scores.interpretability,
            b.scores.score,
            b.explanation_units
        );
    }
}
