//! Distributed search over the county payroll pair: two shard workers,
//! one coordinator, byte-identical answers.
//!
//! This example spins up two in-process `charles-server` workers on
//! loopback (in production they would be `charles-worker` processes on
//! other machines), loads the county payroll snapshots onto both via the
//! wire's CSV ingest, then opens a **remote-backed session**: a
//! `RemoteExecutor` fans each global fit's phase-A/phase-B sufficient
//! statistics across the workers and the coordinator merges them on the
//! canonical block grid — so the rankings and scores are bit-identical to
//! a purely local session, which the example asserts.
//!
//! Run: `cargo run --release --example distributed_county`

use charles_core::{ManagerConfig, SessionManager};
use charles_core::{Query, Session};
use charles_relation::{read_csv, write_csv, SnapshotPair};
use charles_server::{upload_csv, RemoteExecutor, Server, ServerConfig};
use charles_synth::county;
use std::sync::Arc;

fn main() {
    // The county payroll scenario (Montgomery-County-shaped schema), as
    // CSV text — the currency every party parses, so every party holds
    // bit-identical columns.
    let scenario = county(2_000, 42);
    let mut source_csv = Vec::new();
    let mut target_csv = Vec::new();
    write_csv(&scenario.source, &mut source_csv).expect("serialize source");
    write_csv(&scenario.target, &mut target_csv).expect("serialize target");
    let source_csv = String::from_utf8(source_csv).unwrap();
    let target_csv = String::from_utf8(target_csv).unwrap();

    // Two shard workers on loopback, each hosting the whole dataset (any
    // worker can serve any block range — that is what makes re-dispatch
    // after a worker failure possible).
    let mut workers = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..2 {
        let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
        let server =
            Server::start(manager, ServerConfig::default().with_workers(2)).expect("worker starts");
        let addr = server.local_addr().to_string();
        upload_csv(&addr, "county", &source_csv, &target_csv, Some("name"))
            .expect("load dataset onto worker");
        println!("worker {i} serving county payroll on http://{addr}");
        workers.push(server);
        addrs.push(addr);
    }

    // The coordinator's own copy of the pair (clustering, condition
    // induction, and scoring run locally on merged statistics).
    let pair = SnapshotPair::align_on(
        read_csv(source_csv.as_bytes()).unwrap(),
        read_csv(target_csv.as_bytes()).unwrap(),
        "name",
    )
    .unwrap();

    // A remote-backed session: one shard per worker.
    let executor =
        Arc::new(RemoteExecutor::connect("county", &addrs, pair.len(), 0).expect("executor"));
    let session =
        Session::open_distributed(pair.clone(), executor.clone()).expect("distributed session");
    println!(
        "\ndistributed session over {} workers, {} shards: targets = {:?}",
        addrs.len(),
        session.shard_count(),
        session.targets().unwrap()
    );

    // The demo flow: query, then slide α — all statistics fetched from
    // the workers exactly once (fits are memoized session-long).
    let query = Query::new(&scenario.target_attr)
        .with_condition_attrs(["department", "grade"])
        .with_transform_attrs(["base_salary"]);
    let result = session.run(&query).expect("distributed query");
    println!("\n== distributed result ==\n{result}");
    let swept = session
        .sweep_alpha(&result, &[0.0, 0.5, 1.0])
        .expect("sweep");
    for point in &swept {
        let top = point.top().expect("summary");
        println!(
            "α={:.1}: top score {:.4} (accuracy {:.4}, interpretability {:.4})",
            point.alpha, top.scores.score, top.scores.accuracy, top.scores.interpretability
        );
    }

    // The exactness contract, demonstrated: a purely local session over
    // the same bytes answers identically, to the last bit.
    let local = Session::open(pair).expect("local session");
    let local_result = local.run(&query).expect("local query");
    let bits = |r: &charles_core::QueryResult| -> Vec<(String, u64)> {
        r.summaries
            .iter()
            .map(|s| (s.to_string(), s.scores.score.to_bits()))
            .collect()
    };
    assert_eq!(bits(&result), bits(&local_result));
    println!(
        "\nlocal and distributed rankings are bit-identical ({} summaries); \
         merged stats: {:?}; workers live: {}, ranges re-dispatched: {}",
        result.summaries.len(),
        session.stats(),
        executor.live_workers(),
        executor.redispatches()
    );

    for worker in &mut workers {
        worker.shutdown();
    }
}
