//! The paper's demonstration, end to end (Section 3, steps 1–10), on the
//! exact Example-1 / Figure-1 data.
//!
//! ```sh
//! cargo run --example employee_bonus
//! ```

use charles::core::{Charles, CharlesConfig, LinearModelTree, PartitionViz};
use charles::prelude::*;
use charles::synth::example1;

fn main() {
    // Step 1: "upload" the two dataset versions (Figure 1a and 1b).
    let scenario = example1();
    println!("=== Step 1: datasets ===");
    println!("{}", scenario.source);
    println!("{}", scenario.target);

    // Step 2: select the target attribute.
    let target_attr = "bonus";
    println!("=== Step 2: target attribute = {target_attr:?} ===\n");

    // Step 3: parameters — at most 3 condition attributes, 2
    // transformation attributes (the demo's defaults).
    let config = CharlesConfig::default()
        .with_max_condition_attrs(3)
        .with_max_transform_attrs(2);

    let engine = Charles::new(
        scenario.source.clone(),
        scenario.target.clone(),
        target_attr,
    )
    .expect("snapshots align")
    .with_config(config)
    // Steps 4–5: the demo user accepts education, experience, and
    // gender for conditions; previous bonus and salary for
    // transformations.
    .with_condition_attrs(["edu", "exp", "gen"])
    .with_transform_attrs(["bonus", "salary"]);

    // Steps 4–5 output: what the assistant itself would have suggested.
    let setup = engine.setup().expect("assistant runs");
    println!("=== Steps 4–5: assistant suggestions ===");
    for cand in &setup.condition_candidates {
        println!(
            "  condition candidate   {:<12} (assoc {:.2})",
            cand.attr, cand.correlation
        );
    }
    for cand in &setup.transform_candidates {
        println!(
            "  transformation candidate {:<12} (assoc {:.2})",
            cand.attr, cand.correlation
        );
    }
    println!();

    // Step 6: α stays at the 0.5 default. Step 7: generate summaries.
    let result = engine.run().expect("engine runs");

    // Step 8: ranked summaries with their three scores.
    println!("=== Step 8: ranked change summaries ===");
    for (i, s) in result.summaries.iter().enumerate() {
        println!(
            "#{:<2} score {:.3}  accuracy {:.3}  interpretability {:.3}  ({} CTs)",
            i + 1,
            s.scores.score,
            s.scores.accuracy,
            s.scores.interpretability,
            s.len()
        );
    }
    println!();

    let top = result.top().expect("summaries exist");
    println!("=== top summary in full ===\n{top}");

    // Step 9: drill into the top summary — the linear model tree view.
    println!("=== Step 9: linear model tree (paper Fig. 2) ===");
    println!("{}", LinearModelTree::from_summary(top));

    // Step 10: the partition visualization (coverage rectangles; hatched =
    // no change).
    println!("=== Step 10: partition visualization ===");
    println!("{}", PartitionViz::from_summary(top));

    // Bonus: the summary in plain language (how the paper's intro frames
    // explanations).
    println!("=== in plain language ===");
    println!("{}", charles::core::explain_summary(top));

    // Bonus: the α slider (step 6) re-ranks instantly without re-search.
    let interpretable = engine.rescore(&result, 0.1).expect("rescore");
    println!(
        "at α = 0.1 the top summary has {} CT(s) (score {:.3})",
        interpretable.top().unwrap().len(),
        interpretable.top().unwrap().scores.score
    );

    // Epilogue: since this is the synthetic Example 1, we can check the
    // recovery against the known ground truth.
    let pair = SnapshotPair::align(scenario.source, scenario.target).expect("aligns");
    let rules: Vec<charles::core::TruthRule> = scenario
        .policy
        .rule_pairs()
        .into_iter()
        .map(|(condition, expr)| charles::core::TruthRule { condition, expr })
        .collect();
    let report =
        charles::core::evaluate_recovery(top, &pair, "bonus", &rules, &CharlesConfig::default())
            .expect("recovery evaluates");
    println!(
        "recovery vs. ground truth: ARI {:.3}, mean rule Jaccard {:.3}, prediction NMAE {:.5}",
        report.ari, report.mean_rule_jaccard, report.prediction_nmae
    );
}
