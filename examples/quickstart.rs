//! Quickstart: recover a latent update policy from two snapshots.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use charles::core::{Charles, LinearModelTree};
use charles::prelude::*;

fn main() {
    // A small salary table (the earlier snapshot)...
    let v2024 = TableBuilder::new("salaries-2024")
        .str_col(
            "name",
            &["Anne", "Bob", "Cathy", "Dan", "Eve", "Finn", "Gina", "Hugo"],
        )
        .str_col(
            "team",
            &[
                "Core", "Core", "Sales", "Sales", "Core", "Ops", "Ops", "Sales",
            ],
        )
        .int_col("level", &[5, 6, 4, 4, 7, 3, 4, 6])
        .float_col(
            "salary",
            &[
                120_000.0, 135_000.0, 95_000.0, 98_000.0, 150_000.0, 80_000.0, 88_000.0, 125_000.0,
            ],
        )
        .key("name")
        .build()
        .expect("well-formed table");

    // ...evolved by a latent policy nobody wrote down in the data:
    //   - Core engineering got 8% + $2000,
    //   - everyone else got a flat 3% cost-of-living raise.
    let policy = [
        UpdateStatement::new(
            "salary",
            Expr::affine("salary", 1.08, 2000.0),
            Predicate::eq("team", "Core"),
        ),
        UpdateStatement::new(
            "salary",
            Expr::affine("salary", 1.03, 0.0),
            Predicate::eq("team", "Core").not(),
        ),
    ];
    let v2025 = apply_updates(&v2024, &policy, ApplyMode::FirstMatch)
        .expect("policy applies")
        .table;

    println!("=== earlier snapshot ===\n{v2024}");
    println!("=== later snapshot ===\n{v2025}");

    // ChARLES sees only the two snapshots and must recover the policy.
    let result = Charles::new(v2024, v2025, "salary")
        .expect("valid snapshots")
        .run()
        .expect("engine run succeeds");

    println!(
        "search: {} candidates, {} evaluated, {} distinct summaries\n",
        result.stats.candidates, result.stats.evaluated, result.stats.distinct
    );

    let top = result.top().expect("at least one summary");
    println!("=== best change summary ===\n{top}");

    println!("=== as a linear model tree (paper Fig. 2) ===");
    println!("{}", LinearModelTree::from_summary(top));
}
