//! Serve a synthetic county payroll dataset over HTTP and query it with a
//! raw `std::net::TcpStream` client — the serving layer's smoke test.
//!
//! Run: `cargo run --release --example serve_county`
//!
//! The flow mirrors a real deployment in miniature: register a dataset
//! with the [`SessionManager`], start the threaded front end, then speak
//! plain HTTP/1.1 + JSON at it — list the changed attributes, run a
//! query, slide α without re-searching, and read the manager's stats.

use charles::prelude::{ManagerConfig, SessionManager};
use charles_server::{Json, Server, ServerConfig};
use charles_synth::county;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One HTTP exchange over a raw `TcpStream`: write the request by hand,
/// read to EOF, split off the body.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    // A 2k-row county payroll pair evolved by the latent FY pay policy
    // (police 4% + $1500, fire 3.5% + $1000, senior grades 3%, rest 2%).
    let scenario = county(2_000, 42);
    let pair = charles_relation::SnapshotPair::align(scenario.source, scenario.target)
        .expect("county snapshots align");

    let manager = Arc::new(SessionManager::new(
        ManagerConfig::default().with_max_sessions(4),
    ));
    manager.register_pair("county", pair);
    let mut server =
        Server::start(Arc::clone(&manager), ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();
    println!("serving county payroll on http://{addr}\n");

    // Step 1 — which attributes changed? (GET /v1/datasets/county/targets)
    let (status, body) = http(addr, "GET", "/v1/datasets/county/targets", "");
    assert_eq!(status, 200, "{body}");
    println!("changed attributes: {body}");

    // Step 2 — explain base_salary. (POST /v1/datasets/county/query)
    let query = r#"{"target":"base_salary",
                    "condition_attrs":["department","grade","division"],
                    "transform_attrs":["base_salary","overtime_pay"],
                    "top_k":3}"#;
    let (status, body) = http(addr, "POST", "/v1/datasets/county/query", query);
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("result JSON");
    println!(
        "\ntop summaries for \"base_salary\" (α = {}):",
        doc.get("alpha").unwrap()
    );
    for summary in doc.get("summaries").unwrap().as_arr().unwrap() {
        println!(
            "  #{} score {:.3} (accuracy {:.3}):",
            summary.get("rank").unwrap(),
            summary.get("score").unwrap().as_f64().unwrap(),
            summary.get("accuracy").unwrap().as_f64().unwrap(),
        );
        for ct in summary.get("cts").unwrap().as_arr().unwrap() {
            println!("      {}", ct.as_str().unwrap());
        }
    }

    // Step 3 — the α-slider, served: three re-scorings, no re-search.
    let sweep = r#"{"query":{"target":"base_salary",
                             "condition_attrs":["department","grade","division"],
                             "transform_attrs":["base_salary","overtime_pay"],
                             "top_k":1},
                    "alphas":[0.0,0.5,1.0]}"#;
    let (status, body) = http(addr, "POST", "/v1/datasets/county/sweep", sweep);
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("sweep JSON");
    println!("\nα-sweep of the top summary:");
    for result in doc.get("results").unwrap().as_arr().unwrap() {
        let top = &result.get("summaries").unwrap().as_arr().unwrap()[0];
        println!(
            "  α={:<4} → score {:.3} ({} ms served)",
            result.get("alpha").unwrap(),
            top.get("score").unwrap().as_f64().unwrap(),
            result.get("elapsed_ms").unwrap().as_f64().unwrap().round(),
        );
    }

    // Step 4 — manager observability. (GET /v1/datasets/county/stats)
    let (status, body) = http(addr, "GET", "/v1/datasets/county/stats", "");
    assert_eq!(status, 200, "{body}");
    println!("\ndataset stats: {body}");

    server.shutdown();
    println!("\nserver shut down cleanly");
}
