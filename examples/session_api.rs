//! The session-oriented query API: the paper's interactive demo flow
//! (open pair → list targets → query → tweak → sweep α) over one cached
//! data plane.
//!
//! ```sh
//! cargo run --example session_api
//! ```

use charles::core::{Query, Session};
use charles::prelude::*;
use std::time::Instant;

fn main() {
    // Two snapshots of a payroll table...
    let v2024 = TableBuilder::new("payroll-2024")
        .str_col(
            "name",
            &["Anne", "Bob", "Cathy", "Dan", "Eve", "Finn", "Gina", "Hugo"],
        )
        .str_col(
            "team",
            &[
                "Core", "Core", "Sales", "Sales", "Core", "Ops", "Ops", "Sales",
            ],
        )
        .int_col("level", &[5, 6, 4, 4, 7, 3, 4, 6])
        .float_col(
            "salary",
            &[
                120_000.0, 135_000.0, 95_000.0, 98_000.0, 150_000.0, 80_000.0, 88_000.0, 125_000.0,
            ],
        )
        .float_col(
            "bonus",
            &[
                12_000.0, 13_500.0, 9_500.0, 9_800.0, 15_000.0, 8_000.0, 8_800.0, 12_500.0,
            ],
        )
        .key("name")
        .build()
        .expect("well-formed table");

    // ...evolved by two latent policies: salaries +3% across the board,
    // bonuses 10% + $500 for Core only.
    let policy = [
        UpdateStatement::new("salary", Expr::affine("salary", 1.03, 0.0), Predicate::True),
        UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 1.10, 500.0),
            Predicate::eq("team", "Core"),
        ),
    ];
    let v2025 = apply_updates(&v2024, &policy, ApplyMode::Sequential)
        .expect("policy applies")
        .table;

    // Open the session once: every later query reads through its cached
    // column plane (each column is extracted on first use, then shared).
    let session =
        Session::open(SnapshotPair::align(v2024, v2025).expect("snapshots align")).expect("open");

    // Demo step 2: what changed at all?
    let targets = session.targets().expect("targets");
    println!("changed numeric attributes: {targets:?}\n");

    // Steps 3–8, per target: one query each, over the same plane.
    let queries: Vec<Query> = targets.iter().map(Query::new).collect();
    for result in session.run_multi(&queries).expect("multi-target run") {
        println!(
            "=== {:?} (α={}, {} candidates, {:.1?}) ===\n{}",
            result.query.target,
            result.alpha,
            result.stats.candidates,
            result.elapsed,
            result.top().expect("summary")
        );
    }

    // The α-slider (step 6): instant — O(summaries) per point, the search
    // is never repeated.
    let base = session.run(&Query::new("bonus")).expect("base run");
    let started = Instant::now();
    let sweep = session
        .sweep_alpha(&base, &[0.0, 0.25, 0.5, 0.75, 1.0])
        .expect("sweep");
    println!(
        "α-sweep over {} points in {:.1?}:",
        sweep.len(),
        started.elapsed()
    );
    for point in &sweep {
        let top = point.top().expect("summary");
        println!(
            "  α={:.2} → top score {:.3} (accuracy {:.3}, interpretability {:.3}, {} rules)",
            point.alpha,
            top.scores.score,
            top.scores.accuracy,
            top.scores.interpretability,
            top.len()
        );
    }

    // Warm rerun: everything is cached, nothing is recomputed.
    let before = session.stats();
    let started = Instant::now();
    session.run(&Query::new("bonus")).expect("warm rerun");
    let after = session.stats();
    println!(
        "\nwarm rerun in {:.1?} — new fits: {}, new labelings: {}, new candidate evals: {}",
        started.elapsed(),
        after.global_fits_computed - before.global_fits_computed,
        after.labelings_computed - before.labelings_computed,
        after.candidates_computed - before.candidates_computed,
    );
}
