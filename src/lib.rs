//! # ChARLES — Change-Aware Recovery of Latent Evolution Semantics
//!
//! Facade crate re-exporting the full ChARLES stack. See `charles_core` for
//! the recovery engine and the README for a tour.

#![forbid(unsafe_code)]

pub use charles_cluster as cluster;
pub use charles_core as core;
pub use charles_diff as diff;
pub use charles_numerics as numerics;
pub use charles_relation as relation;
pub use charles_synth as synth;

/// Commonly used items in one import.
pub mod prelude {
    pub use charles_core::{
        Charles, CharlesConfig, DatasetSpec, ManagerConfig, Query, QueryError, QueryResult,
        Session, SessionManager, SessionStats,
    };
    pub use charles_relation::{
        apply_updates, read_csv, read_csv_path, write_csv, write_csv_path, ApplyMode, CmpOp,
        Column, DataType, Expr, Predicate, RowRange, Schema, SnapshotPair, Table, TableBuilder,
        UpdateStatement, Value,
    };
}
