//! Cross-crate tests: ChARLES vs the baseline explainers, and the
//! syntactic diff layer against known evolution scenarios.

use charles::core::{Charles, CharlesConfig};
use charles::diff::{all_baselines, change_stats, diff_attr, update_distance};
use charles::prelude::*;
use charles::synth::{county, example1};

#[test]
fn charles_beats_every_baseline_on_example1() {
    let scenario = example1();
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let config = CharlesConfig::default();
    let top_score = Charles::from_pair(pair.clone(), "bonus")
        .unwrap()
        .with_condition_attrs(["edu", "exp", "gen"])
        .with_transform_attrs(["bonus", "salary"])
        .run()
        .unwrap()
        .top()
        .unwrap()
        .scores
        .score;
    for baseline in all_baselines(&pair, "bonus", &config).unwrap() {
        assert!(
            top_score > baseline.scores.score,
            "baseline {} scored {} ≥ ChARLES {}",
            baseline.name,
            baseline.scores.score,
            top_score
        );
    }
}

#[test]
fn charles_beats_every_baseline_on_county() {
    let scenario = county(600, 13);
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let config = CharlesConfig::default();
    let top_score = Charles::from_pair(pair.clone(), "base_salary")
        .unwrap()
        .run()
        .unwrap()
        .top()
        .unwrap()
        .scores
        .score;
    for baseline in all_baselines(&pair, "base_salary", &config).unwrap() {
        assert!(
            top_score > baseline.scores.score,
            "baseline {} scored {} ≥ ChARLES {}",
            baseline.name,
            baseline.scores.score,
            top_score
        );
    }
}

#[test]
fn baseline_tradeoff_shape() {
    // The paper's framing: the exhaustive list maximizes accuracy with
    // rock-bottom interpretability; R4-style flat summaries are the
    // opposite.
    let scenario = example1();
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let config = CharlesConfig::default();
    let reports = all_baselines(&pair, "bonus", &config).unwrap();
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|r| r.name.starts_with(name))
            .unwrap_or_else(|| panic!("missing baseline {name}"))
    };
    let exhaustive = by_name("exhaustive");
    let r4 = by_name("flat-ratio");
    assert_eq!(exhaustive.scores.accuracy, 1.0);
    assert!(r4.scores.interpretability > exhaustive.scores.interpretability);
    assert!(exhaustive.scores.accuracy > r4.scores.accuracy);
    assert!(exhaustive.explanation_units > r4.explanation_units);
}

#[test]
fn diff_layer_sees_exactly_the_policy_changes() {
    let scenario = example1();
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
    // Figure 1: 7 employees' bonuses changed; Cathy and James did not.
    let changes = diff_attr(&pair, "bonus").unwrap();
    assert_eq!(changes.len(), 7);
    assert!(changes.iter().all(|c| c.attr == "bonus"));
    assert!(!changes.iter().any(|c| c.key == Value::str("Cathy")));
    assert!(!changes.iter().any(|c| c.key == Value::str("James")));

    let stats = change_stats(&pair).unwrap();
    assert_eq!(stats.rows, 9);
    assert_eq!(stats.rows_changed, 7);
    assert_eq!(stats.cells_changed, 7);
    let bonus = &stats.per_attr["bonus"];
    assert!(bonus.mean_delta.unwrap() > 0.0, "bonuses only increased");
    assert_eq!(bonus.min_delta.unwrap(), 790.0); // Allen: 13790 − 13000

    // Update distance: same entities, so modifications only.
    let d = update_distance(&scenario.source, &scenario.target, "name").unwrap();
    assert_eq!(d.inserts, 0);
    assert_eq!(d.deletes, 0);
    assert_eq!(d.modifications, 7);
}
