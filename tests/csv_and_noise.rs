//! Integration tests: CSV ingestion path and noise robustness.

use charles::core::{evaluate_recovery, Charles, CharlesConfig, TruthRule};
use charles::prelude::*;
use charles::synth::{county, employees, perturb};

#[test]
fn csv_roundtrip_preserves_recovery() {
    let scenario = county(300, 17);
    let dir = std::env::temp_dir().join("charles-test-csv");
    std::fs::create_dir_all(&dir).unwrap();
    let sp = dir.join("src.csv");
    let tp = dir.join("tgt.csv");
    write_csv_path(&scenario.source, &sp).unwrap();
    write_csv_path(&scenario.target, &tp).unwrap();

    let source = read_csv_path(&sp).unwrap().with_key("name").unwrap();
    let target = read_csv_path(&tp).unwrap().with_key("name").unwrap();
    assert!(source.content_eq(&scenario.source));
    assert!(target.content_eq(&scenario.target));

    let direct = Charles::new(scenario.source, scenario.target, "base_salary")
        .unwrap()
        .run()
        .unwrap();
    let roundtripped = Charles::new(source, target, "base_salary")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        direct.top().unwrap().signature(),
        roundtripped.top().unwrap().signature()
    );
}

fn recovery_ari(noise_fraction: f64, alpha: f64) -> f64 {
    let scenario = employees(300, 23);
    let noisy_target = perturb(&scenario.target, "bonus", noise_fraction, 0.5, 99)
        .unwrap()
        .table;
    let pair = SnapshotPair::align(scenario.source.clone(), noisy_target).unwrap();
    let result = Charles::from_pair(pair.clone(), "bonus")
        .unwrap()
        .with_config(CharlesConfig::default().with_alpha(alpha))
        .with_condition_attrs(["edu", "exp", "gen"])
        .with_transform_attrs(["bonus", "salary"])
        .run()
        .unwrap();
    let rules: Vec<TruthRule> = scenario
        .policy
        .rule_pairs()
        .into_iter()
        .map(|(condition, expr)| TruthRule { condition, expr })
        .collect();
    evaluate_recovery(
        result.top().unwrap(),
        &pair,
        "bonus",
        &rules,
        &CharlesConfig::default(),
    )
    .unwrap()
    .ari
}

#[test]
fn noise_free_recovery_is_perfect_and_degrades_gracefully() {
    let clean = recovery_ari(0.0, 0.5);
    assert!(clean > 0.999, "clean ARI {clean}");
    // Under contamination, accuracy saturates and interpretability starts
    // dominating the default α = 0.5 ranking — the paper's α knob exists
    // precisely for this: an accuracy-focused user raises α and the true
    // structure surfaces again.
    let light = recovery_ari(0.05, 0.9);
    assert!(light > 0.9, "ARI at 5% noise, α = 0.9: {light}");
    // Heavy contamination: the engine must still run and produce ranked,
    // valid output (quality is measured by experiment E6, not asserted).
    let heavy = recovery_ari(0.4, 0.9);
    assert!((-1.0..=1.0).contains(&heavy));
}

#[test]
fn engine_handles_all_rows_noisy() {
    // Pure noise: no latent policy at all. The engine should still return
    // *some* ranked summaries without panicking, with sane scores.
    let scenario = employees(150, 31);
    let noisy = perturb(&scenario.source, "bonus", 1.0, 0.3, 7)
        .unwrap()
        .table;
    let pair = SnapshotPair::align(scenario.source, noisy).unwrap();
    let result = Charles::from_pair(pair, "bonus").unwrap().run().unwrap();
    assert!(!result.summaries.is_empty());
    for s in &result.summaries {
        assert!(s.scores.score.is_finite());
        assert!((0.0..=1.0).contains(&s.scores.score));
    }
}
