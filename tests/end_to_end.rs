//! End-to-end integration tests: full recovery pipeline over every
//! synthetic scenario, with ground-truth verification.

use charles::core::{
    evaluate_recovery, Charles, CharlesConfig, LinearModelTree, PartitionViz, TruthRule,
};
use charles::prelude::*;
use charles::synth::{billionaires, county, employees, example1};

fn truth_rules(scenario: &charles::synth::Scenario) -> Vec<TruthRule> {
    scenario
        .policy
        .rule_pairs()
        .into_iter()
        .map(|(condition, expr)| TruthRule { condition, expr })
        .collect()
}

#[test]
fn example1_exact_recovery() {
    let scenario = example1();
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
    let engine = Charles::from_pair(pair.clone(), "bonus")
        .unwrap()
        .with_condition_attrs(["edu", "exp", "gen"])
        .with_transform_attrs(["bonus", "salary"]);
    let result = engine.run().unwrap();
    let top = result.top().unwrap();

    assert!(
        top.scores.accuracy > 0.999,
        "accuracy {}",
        top.scores.accuracy
    );
    let rendered = top.to_string();
    assert!(rendered.contains("1.05 × old_bonus + 1000"), "{rendered}");
    assert!(rendered.contains("1.04 × old_bonus + 800"), "{rendered}");
    assert!(rendered.contains("no change"), "{rendered}");

    let report = evaluate_recovery(
        top,
        &pair,
        "bonus",
        &truth_rules(&scenario),
        &CharlesConfig::default(),
    )
    .unwrap();
    assert!((report.ari - 1.0).abs() < 1e-9, "ARI {}", report.ari);
    assert!(report.prediction_nmae < 1e-9);
}

#[test]
fn scaled_employees_recover_r3_coefficients() {
    // With enough MS-junior employees, R3's (1.03, 400) becomes
    // identifiable (unlike the 9-row Figure 1 where it covers one person).
    let scenario = employees(300, 11);
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
    let engine = Charles::from_pair(pair.clone(), "bonus")
        .unwrap()
        .with_condition_attrs(["edu", "exp", "gen"])
        .with_transform_attrs(["bonus", "salary"]);
    let result = engine.run().unwrap();
    let top = result.top().unwrap();
    assert!(
        top.scores.accuracy > 0.999,
        "accuracy {}",
        top.scores.accuracy
    );
    let rendered = top.to_string();
    assert!(rendered.contains("1.05 × old_bonus + 1000"), "{rendered}");
    assert!(rendered.contains("1.04 × old_bonus + 800"), "{rendered}");
    assert!(rendered.contains("1.03 × old_bonus + 400"), "{rendered}");

    let report = evaluate_recovery(
        top,
        &pair,
        "bonus",
        &truth_rules(&scenario),
        &CharlesConfig::default(),
    )
    .unwrap();
    assert!(report.ari > 0.999, "ARI {}", report.ari);
    assert!(report.mean_rule_jaccard > 0.999);
}

#[test]
fn county_recovery_with_assistant_defaults() {
    let scenario = county(800, 42);
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
    let engine = Charles::from_pair(pair.clone(), "base_salary").unwrap();
    let result = engine.run().unwrap();
    let top = result.top().unwrap();
    assert!(
        top.scores.accuracy > 0.999,
        "accuracy {}",
        top.scores.accuracy
    );
    let report = evaluate_recovery(
        top,
        &pair,
        "base_salary",
        &truth_rules(&scenario),
        &CharlesConfig::default(),
    )
    .unwrap();
    assert!(report.ari > 0.95, "ARI {}", report.ari);
    assert!(
        report.prediction_nmae < 1e-6,
        "NMAE {}",
        report.prediction_nmae
    );
}

#[test]
fn billionaires_recovery() {
    let scenario = billionaires(300, 7);
    let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
    let engine = Charles::from_pair(pair.clone(), "net_worth")
        .unwrap()
        .with_config(
            CharlesConfig::default()
                .with_max_condition_attrs(2)
                .with_max_transform_attrs(1),
        );
    let result = engine.run().unwrap();
    let top = result.top().unwrap();
    assert!(
        top.scores.accuracy > 0.99,
        "accuracy {}",
        top.scores.accuracy
    );
    let rendered = top.to_string();
    assert!(rendered.contains("1.15"), "{rendered}");
    assert!(rendered.contains("0.92"), "{rendered}");
}

#[test]
fn runs_are_deterministic() {
    let scenario = county(400, 3);
    let run = || {
        let pair = SnapshotPair::align(scenario.source.clone(), scenario.target.clone()).unwrap();
        let result = Charles::from_pair(pair, "base_salary")
            .unwrap()
            .run()
            .unwrap();
        result
            .summaries
            .iter()
            .map(|s| s.signature())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn alpha_zero_prefers_simpler_summaries() {
    let scenario = employees(120, 5);
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let top_at = |alpha: f64| {
        let result = Charles::from_pair(pair.clone(), "bonus")
            .unwrap()
            .with_config(CharlesConfig::default().with_alpha(alpha))
            .run()
            .unwrap();
        let top = result.top().unwrap().clone();
        top
    };
    let interpretable = top_at(0.0);
    let accurate = top_at(1.0);
    // α=1 maximizes accuracy; α=0 maximizes interpretability.
    assert!(accurate.scores.accuracy >= interpretable.scores.accuracy - 1e-12);
    assert!(interpretable.scores.interpretability >= accurate.scores.interpretability - 1e-12);
    // And the interpretable one should not be bigger than the accurate one.
    assert!(interpretable.len() <= accurate.len());
}

#[test]
fn tree_and_viz_render_for_every_summary() {
    let scenario = county(300, 9);
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let result = Charles::from_pair(pair, "base_salary")
        .unwrap()
        .run()
        .unwrap();
    for summary in &result.summaries {
        let tree = LinearModelTree::from_summary(summary);
        let text = tree.to_string();
        assert!(!text.is_empty());
        assert!(tree.leaf_count() >= summary.len());
        let viz = PartitionViz::from_summary(summary);
        assert_eq!(viz.rects.len(), summary.len());
        let vtext = viz.to_string();
        assert!(vtext.contains('%'));
    }
}

#[test]
fn summary_partitions_are_disjoint_and_in_range() {
    let scenario = county(500, 21);
    let n = scenario.len();
    let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
    let result = Charles::from_pair(pair, "base_salary")
        .unwrap()
        .run()
        .unwrap();
    for summary in &result.summaries {
        let mut seen = vec![false; n];
        for ct in &summary.cts {
            for &row in &ct.rows {
                assert!(row < n);
                assert!(!seen[row], "row {row} covered twice");
                seen[row] = true;
            }
        }
        assert!(summary.total_coverage() <= 1.0 + 1e-9);
        assert!(summary.scores.accuracy >= 0.0 && summary.scores.accuracy <= 1.0);
        assert!(summary.scores.interpretability >= 0.0 && summary.scores.interpretability <= 1.0);
    }
}
