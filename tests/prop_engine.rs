//! Property-based tests over the full pipeline: for *any* small population
//! evolved by *any* affine policy keyed on a categorical attribute, the
//! engine must uphold its structural invariants — and when the policy is
//! exactly representable, recover it with near-perfect accuracy.

use charles::core::{Charles, CharlesConfig};
use charles::prelude::*;
use proptest::prelude::*;

/// A generated population plus an affine two-group policy.
#[derive(Debug, Clone)]
struct Case {
    groups: Vec<u8>, // group id per row (0 or 1)
    base: Vec<f64>,  // target attribute values
    scale0: f64,
    offset0: f64,
    scale1: f64,
    offset1: f64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let row = (0u8..2, 1_000.0f64..100_000.0);
    (
        proptest::collection::vec(row, 8..40),
        0.8f64..1.5,
        -500.0f64..2_000.0,
        0.8f64..1.5,
        -500.0f64..2_000.0,
    )
        .prop_map(|(rows, scale0, offset0, scale1, offset1)| {
            let (groups, base): (Vec<u8>, Vec<f64>) = rows.into_iter().unzip();
            Case {
                groups,
                base,
                scale0: (scale0 * 100.0).round() / 100.0,
                offset0: offset0.round(),
                scale1: (scale1 * 100.0).round() / 100.0,
                offset1: offset1.round(),
            }
        })
        .prop_filter("both groups present", |c| {
            c.groups.contains(&0) && c.groups.contains(&1)
        })
}

fn build_pair(case: &Case) -> SnapshotPair {
    let n = case.groups.len();
    let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let teams: Vec<&str> = case
        .groups
        .iter()
        .map(|&g| if g == 0 { "A" } else { "B" })
        .collect();
    let source = TableBuilder::new("s")
        .str_col("name", &names)
        .str_col("team", &teams)
        .float_col("pay", &case.base)
        .key("name")
        .build()
        .unwrap();
    let new_pay: Vec<f64> = case
        .groups
        .iter()
        .zip(case.base.iter())
        .map(|(&g, &p)| {
            if g == 0 {
                case.scale0 * p + case.offset0
            } else {
                case.scale1 * p + case.offset1
            }
        })
        .collect();
    let target = TableBuilder::new("t")
        .str_col("name", &names)
        .str_col("team", &teams)
        .float_col("pay", &new_pay)
        .key("name")
        .build()
        .unwrap();
    SnapshotPair::align(source, target).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_invariants_hold(case in case_strategy()) {
        let n = case.groups.len();
        let pair = build_pair(&case);
        let result = Charles::from_pair(pair, "pay")
            .unwrap()
            .with_config(CharlesConfig::default().with_threads(1))
            .run()
            .unwrap();
        prop_assert!(!result.summaries.is_empty());
        for s in &result.summaries {
            // Scores in range.
            prop_assert!((0.0..=1.0).contains(&s.scores.accuracy));
            prop_assert!((0.0..=1.0).contains(&s.scores.interpretability));
            prop_assert!((0.0..=1.0).contains(&s.scores.score));
            // Partitions disjoint, rows in range, coverage bounded.
            let mut seen = vec![false; n];
            for ct in &s.cts {
                prop_assert!(!ct.rows.is_empty());
                for &row in &ct.rows {
                    prop_assert!(row < n);
                    prop_assert!(!seen[row]);
                    seen[row] = true;
                }
                prop_assert!((0.0..=1.0 + 1e-9).contains(&ct.coverage));
                prop_assert!(ct.mae.is_finite() && ct.mae >= 0.0);
            }
            prop_assert!(s.total_coverage() <= 1.0 + 1e-9);
        }
        // Ranking is by descending score.
        for w in result.summaries.windows(2) {
            prop_assert!(w[0].scores.score >= w[1].scores.score - 1e-12);
        }
    }

    #[test]
    fn representable_policies_recovered_accurately(case in case_strategy()) {
        // Skip nearly-indistinguishable group behaviours: recovery cannot
        // separate what is numerically identical.
        prop_assume!(
            (case.scale0 - case.scale1).abs() > 0.02
                || (case.offset0 - case.offset1).abs() > 100.0
        );
        // The condition attribute is supplied explicitly (demo steps 4–5
        // allow the user to pick attributes) and α = 0.9 prioritizes
        // accuracy: this property isolates the search + scoring layers.
        // Whether the *assistant* shortlists the attribute unaided, and
        // whether the exact summary also wins at the default α = 0.5,
        // depend on statistical identifiability of the draw and are
        // covered by the scenario tests (E1/E4) — on adversarial draws
        // (tiny n, 60× value spreads, ragged constants) an almost-exact
        //-but-rounder summary may legitimately out-rank the exact one at
        // α = 0.5.
        let pair = build_pair(&case);
        let result = Charles::from_pair(pair, "pay")
            .unwrap()
            .with_config(CharlesConfig::default().with_alpha(0.9).with_threads(1))
            .with_condition_attrs(["team"])
            .run()
            .unwrap();
        let top = result.top().unwrap();
        prop_assert!(
            top.scores.accuracy > 0.98,
            "accuracy {} for case {:?}",
            top.scores.accuracy,
            case
        );
    }
}
