//! Integration tests for the session-oriented query API: equivalence with
//! the one-shot `Charles` facade, α-sweep correctness, multi-target runs,
//! and cache effectiveness across runs.

use charles::core::{Charles, Query, Session};
use charles::prelude::*;

/// A pair where two numeric attributes (`bonus`, `salary`) evolve under
/// separate latent policies — the multi-target scenario.
fn two_target_pair() -> SnapshotPair {
    let n = 60;
    let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let edu: Vec<&str> = (0..n)
        .map(|i| match i % 3 {
            0 => "PhD",
            1 => "MS",
            _ => "BS",
        })
        .collect();
    let exp: Vec<i64> = (0..n).map(|i| (i as i64 * 7) % 10).collect();
    let salary: Vec<f64> = (0..n).map(|i| 90_000.0 + 1_500.0 * i as f64).collect();
    let bonus: Vec<f64> = salary.iter().map(|s| s * 0.1).collect();
    let source = TableBuilder::new("s")
        .str_col("name", &names)
        .str_col("edu", &edu)
        .int_col("exp", &exp)
        .float_col("salary", &salary)
        .float_col("bonus", &bonus)
        .key("name")
        .build()
        .unwrap();
    let policy = [
        // Salary: flat 3% for everyone.
        UpdateStatement::new("salary", Expr::affine("salary", 1.03, 0.0), Predicate::True),
        // Bonus: PhDs get 5% + 1000, everyone else unchanged.
        UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 1.05, 1000.0),
            Predicate::eq("edu", "PhD"),
        ),
    ];
    // Sequential: both statements apply (they touch different attributes).
    let target = apply_updates(&source, &policy, ApplyMode::Sequential)
        .unwrap()
        .table;
    SnapshotPair::align(source, target).unwrap()
}

fn rendered(summaries: &[charles::core::ChangeSummary]) -> Vec<String> {
    summaries.iter().map(|s| s.to_string()).collect()
}

#[test]
fn session_targets_match_changed_numeric_attributes() {
    let pair = two_target_pair();
    let session = Session::open(pair.clone()).unwrap();
    let expected = Charles::changed_numeric_attributes(&pair).unwrap();
    assert_eq!(session.targets().unwrap(), expected);
    assert_eq!(
        expected,
        vec!["salary".to_string(), "bonus".to_string()],
        "both targets changed"
    );
}

#[test]
fn alpha_sweep_equals_fresh_rescore_per_alpha() {
    let pair = two_target_pair();
    let session = Session::open(pair.clone()).unwrap();
    let base = session.run(&Query::new("bonus")).unwrap();
    let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let swept = session.sweep_alpha(&base, &alphas).unwrap();

    for (result, &alpha) in swept.iter().zip(alphas.iter()) {
        // The reference: a completely fresh one-shot engine, run + rescore.
        let engine = Charles::from_pair(pair.clone(), "bonus").unwrap();
        let fresh = engine.run().unwrap();
        let reference = engine.rescore(&fresh, alpha).unwrap();
        assert_eq!(
            rendered(&result.summaries),
            rendered(&reference.summaries),
            "sweep at α={alpha} must match a fresh run + rescore"
        );
    }
}

#[test]
fn multi_target_run_equals_independent_runs() {
    let pair = two_target_pair();
    let session = Session::open(pair.clone()).unwrap();
    let queries: Vec<Query> = session
        .targets()
        .unwrap()
        .into_iter()
        .map(Query::new)
        .collect();
    assert_eq!(queries.len(), 2);
    let multi = session.run_multi(&queries).unwrap();

    for (query, result) in queries.iter().zip(multi.iter()) {
        // The reference: a fresh one-shot engine per target.
        let reference = Charles::from_pair(pair.clone(), &query.target)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            rendered(&result.summaries),
            rendered(&reference.summaries),
            "multi-target result for {:?} must match an independent run",
            query.target
        );
    }
}

#[test]
fn second_run_of_same_query_hits_every_cache() {
    let session = Session::open(two_target_pair()).unwrap();
    let query = Query::new("bonus");
    let first = session.run(&query).unwrap();
    let warmed = session.stats();
    assert!(warmed.global_fits_computed > 0, "cold run fits something");

    let second = session.run(&query).unwrap();
    let after = session.stats();
    assert_eq!(
        after.global_fits_computed, warmed.global_fits_computed,
        "warm rerun must perform zero new global fits"
    );
    assert_eq!(
        after.labelings_computed, warmed.labelings_computed,
        "warm rerun must perform zero new labelings"
    );
    assert_eq!(
        after.candidates_computed, warmed.candidates_computed,
        "warm rerun must re-evaluate zero candidates"
    );
    assert_eq!(
        after.columns_extracted, warmed.columns_extracted,
        "warm rerun must extract zero columns"
    );
    assert_eq!(rendered(&first.summaries), rendered(&second.summaries));
}

#[test]
fn facade_and_session_agree() {
    let pair = two_target_pair();
    let facade = Charles::from_pair(pair.clone(), "bonus")
        .unwrap()
        .run()
        .unwrap();
    let session = Session::open(pair).unwrap();
    let result = session.run(&Query::new("bonus")).unwrap();
    assert_eq!(rendered(&facade.summaries), rendered(&result.summaries));
    assert_eq!(facade.stats.candidates, result.stats.candidates);
    assert_eq!(facade.stats.distinct, result.stats.distinct);
}

#[test]
fn facade_rescore_equals_session_rescore() {
    let pair = two_target_pair();
    let engine = Charles::from_pair(pair.clone(), "bonus").unwrap();
    let base = engine.run().unwrap();
    let session = Session::open(pair).unwrap();
    let session_base = session.run(&Query::new("bonus")).unwrap();
    for alpha in [0.0, 0.3, 0.9] {
        let facade = engine.rescore(&base, alpha).unwrap();
        let through_session = session.rescore(&session_base, alpha).unwrap();
        assert_eq!(
            rendered(&facade.summaries),
            rendered(&through_session.summaries),
            "rescore at α={alpha}"
        );
    }
}

#[test]
fn shortlist_overrides_flow_through_queries() {
    let session = Session::open(two_target_pair()).unwrap();
    let result = session
        .run(
            &Query::new("bonus")
                .with_condition_attrs(["edu"])
                .with_transform_attrs(["bonus"])
                .with_top_k(3),
        )
        .unwrap();
    assert!(result.summaries.len() <= 3);
    let top = result.top().unwrap();
    assert_eq!(top.transform_attrs, vec!["bonus".to_string()]);
    assert!(top.scores.accuracy > 0.999, "{}", top.scores.accuracy);
}
