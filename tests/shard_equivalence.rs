//! Differential/property harness pinning the sharding exactness contract:
//! for every tested (dataset, shard count, α), a sharded session's
//! rankings, score bits, `sweep_alpha` outputs, and `targets()` are
//! **byte-identical** to the unsharded oracle — including the degenerate
//! layouts (more shards than rows, empty shards, empty tables), and
//! including *failures* (a query that errors unsharded must error sharded
//! with the same message).
//!
//! The oracle is `Session::open` on the same pair; the subject is
//! `Session::open_sharded(pair, n)`. Nothing here uses tolerances: every
//! comparison is on rendered strings and `f64::to_bits`.

use charles_core::{Query, QueryResult, Session};
use charles_relation::{
    apply_updates, ApplyMode, Expr, Predicate, SnapshotPair, TableBuilder, UpdateStatement,
};
use charles_synth::county;
use proptest::prelude::*;
use std::sync::Arc;

/// Shard counts exercised against every dataset: the unsharded-as-sharded
/// case (1), small counts, a prime, and one far larger than any tested row
/// count (every trailing shard empty).
const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 7, 4096];

/// Render a result for exact comparison: display strings plus the raw bits
/// of every score component.
fn fingerprint(result: &QueryResult) -> Vec<(String, u64, u64, u64)> {
    result
        .summaries
        .iter()
        .map(|s| {
            (
                s.to_string(),
                s.scores.score.to_bits(),
                s.scores.accuracy.to_bits(),
                s.scores.interpretability.to_bits(),
            )
        })
        .collect()
}

/// Assert that the sharded session answers `query` (and an α-sweep over
/// it) exactly like the oracle — identical successes or identical errors.
fn assert_shard_equivalent(
    pair: &SnapshotPair,
    query: &Query,
    alphas: &[f64],
) -> Result<(), TestCaseError> {
    let oracle = Session::open(pair.clone()).expect("oracle session opens");
    let base = oracle.run(query);
    for &shards in &SHARD_COUNTS {
        let sharded = Session::open_sharded(pair.clone(), shards).expect("sharded session opens");
        prop_assert_eq!(
            sharded.targets().unwrap(),
            oracle.targets().unwrap(),
            "targets() diverged at {} shards",
            shards
        );
        let subject = sharded.run(query);
        match (&base, &subject) {
            (Ok(expected), Ok(actual)) => {
                prop_assert_eq!(
                    fingerprint(actual),
                    fingerprint(expected),
                    "rankings diverged at {} shards",
                    shards
                );
                prop_assert_eq!(actual.alpha.to_bits(), expected.alpha.to_bits());
                // The α-slider must be layout-invariant too.
                let swept_oracle = oracle.sweep_alpha(expected, alphas).unwrap();
                let swept_sharded = sharded.sweep_alpha(actual, alphas).unwrap();
                for (a, b) in swept_sharded.iter().zip(swept_oracle.iter()) {
                    prop_assert_eq!(
                        fingerprint(a),
                        fingerprint(b),
                        "sweep diverged at {} shards, α={}",
                        shards,
                        b.alpha
                    );
                }
            }
            (Err(expected), Err(actual)) => {
                prop_assert_eq!(
                    actual.to_string(),
                    expected.to_string(),
                    "errors diverged at {} shards",
                    shards
                );
            }
            (expected, actual) => {
                return Err(TestCaseError::fail(format!(
                    "oracle and {shards}-shard session disagree on feasibility: \
                     oracle={expected:?} sharded={actual:?}"
                )));
            }
        }
    }
    Ok(())
}

/// A policy-driven synthetic pair: `rows` employees over three education
/// groups, bonus evolved by per-group affine rules drawn from the
/// parameters. Deterministic in its inputs, so proptest failures replay.
fn policy_pair(rows: usize, scale_pct: u8, offset_step: u16, churn: u8) -> SnapshotPair {
    let names: Vec<String> = (0..rows).map(|i| format!("e{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let edu: Vec<&str> = (0..rows)
        .map(|i| ["PhD", "MS", "BS"][(i + churn as usize) % 3])
        .collect();
    let exp: Vec<i64> = (0..rows)
        .map(|i| ((i * 7 + churn as usize) % 11) as i64)
        .collect();
    let bonus: Vec<f64> = (0..rows)
        .map(|i| 5_000.0 + ((i as f64 * 631.0 + churn as f64 * 97.0) % 17_000.0))
        .collect();
    let source = TableBuilder::new("v1")
        .str_col("name", &name_refs)
        .str_col("edu", &edu)
        .int_col("exp", &exp)
        .float_col("bonus", &bonus)
        .key("name")
        .build()
        .unwrap();
    let scale = 1.0 + f64::from(scale_pct % 16) / 100.0;
    let offset = f64::from(offset_step % 12) * 250.0;
    let policy = [
        UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", scale, offset),
            Predicate::eq("edu", "PhD"),
        ),
        UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 1.0 + f64::from(scale_pct % 7) / 200.0, 400.0),
            Predicate::eq("edu", "MS"),
        ),
    ];
    let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
        .unwrap()
        .table;
    SnapshotPair::align(source, target).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Policy-driven synthetic pairs across sizes straddling the canonical
    /// block boundary (so shard layouts range from "all rows in shard 0"
    /// to genuine multi-shard merges), × shard counts × α overrides.
    #[test]
    fn sharded_equals_oracle_on_policy_pairs(
        rows in prop_oneof![0usize..6, 6usize..130, 130usize..400],
        scale_pct in 0u8..=255,
        offset_step in 0u16..=999,
        churn in 0u8..=255,
        alpha_idx in 0usize..4,
    ) {
        let pair = policy_pair(rows, scale_pct, offset_step, churn);
        let alpha = [0.0, 0.3, 0.5, 1.0][alpha_idx];
        let query = Query::new("bonus")
            .with_condition_attrs(["edu", "exp"])
            .with_transform_attrs(["bonus"])
            .with_alpha(alpha);
        assert_shard_equivalent(&pair, &query, &[0.0, 0.25, 0.5, 0.75, 1.0])?;
    }

    /// The paper's county payroll scenario at proptest-drawn sizes and
    /// seeds, queried with the bench shortlists.
    #[test]
    fn sharded_equals_oracle_on_county_payroll(
        rows in 40usize..320,
        seed in 0u64..1_000,
    ) {
        let scenario = county(rows, seed);
        let pair = SnapshotPair::align(scenario.source, scenario.target).unwrap();
        let query = Query::new(&scenario.target_attr)
            .with_condition_attrs(["department", "grade"])
            .with_transform_attrs(["base_salary"]);
        assert_shard_equivalent(&pair, &query, &[0.0, 0.5, 1.0])?;
    }
}

/// Degenerate layouts, pinned deterministically (not only via proptest).
#[test]
fn degenerate_shard_layouts_match_oracle() {
    // Shards far beyond the row count: every shard but the first is empty.
    let pair = policy_pair(9, 5, 4, 0);
    let query = Query::new("bonus")
        .with_condition_attrs(["edu"])
        .with_transform_attrs(["bonus"]);
    assert_shard_equivalent(&pair, &query, &[0.0, 1.0]).unwrap();

    // A zero-row pair: sessions open, targets() is empty, and queries fail
    // identically on both layouts.
    let empty = policy_pair(0, 1, 1, 1);
    let oracle = Session::open(empty.clone()).unwrap();
    assert!(oracle.targets().unwrap().is_empty());
    for shards in [1usize, 3, 64] {
        let sharded = Session::open_sharded(empty.clone(), shards).unwrap();
        assert!(sharded.targets().unwrap().is_empty());
        let a = oracle.run(&query).map(|r| fingerprint(&r));
        let b = sharded.run(&query).map(|r| fingerprint(&r));
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
            other => panic!("empty-pair feasibility diverged: {other:?}"),
        }
    }

    // `open_sharded(_, 0)` clamps to one shard rather than failing.
    let clamped = Session::open_sharded(pair, 0).unwrap();
    assert_eq!(clamped.shard_count(), 1);
}

// ---- The distributed differential suite --------------------------------
//
// The same contract, with the shards living on real `charles-server`
// worker processes behind the wire protocol: a `RemoteExecutor`-backed
// session must answer **bit-identically** to the unsharded in-process
// oracle — rankings, score bits, `sweep_alpha` — for every tested
// (dataset, worker count, α), and must keep doing so after a worker dies
// mid-session (its block ranges re-dispatch to the survivors).

mod distributed {
    use super::*;
    use charles_core::{ManagerConfig, SessionManager};
    use charles_server::{upload_csv, RemoteExecutor, Server, ServerConfig};

    /// Serialize a table to CSV text (the transport both the workers and
    /// the canonical pair parse, so every party holds identical bits).
    fn csv_of(table: &charles_relation::Table) -> String {
        let mut out = Vec::new();
        charles_relation::write_csv(table, &mut out).expect("write csv");
        String::from_utf8(out).expect("csv is utf8")
    }

    /// The canonical CSV-parsed pair: oracle, coordinator, and workers
    /// all open exactly these bytes, so bit-equality assertions compare
    /// computation, never serialization.
    fn canonical_pair(source_csv: &str, target_csv: &str) -> SnapshotPair {
        SnapshotPair::align_on(
            charles_relation::read_csv(source_csv.as_bytes()).unwrap(),
            charles_relation::read_csv(target_csv.as_bytes()).unwrap(),
            "name",
        )
        .unwrap()
    }

    /// Spin up `n` loopback workers, each its own server + manager,
    /// hosting `dataset` loaded from the CSV text over the wire.
    fn start_workers(
        n: usize,
        dataset: &str,
        source_csv: &str,
        target_csv: &str,
    ) -> (Vec<Server>, Vec<String>) {
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
            let server = Server::start(manager, ServerConfig::default().with_workers(2))
                .expect("worker server starts");
            let addr = server.local_addr().to_string();
            upload_csv(&addr, dataset, source_csv, target_csv, Some("name")).expect("upload");
            servers.push(server);
            addrs.push(addr);
        }
        (servers, addrs)
    }

    #[test]
    fn distributed_equals_unsharded_oracle() {
        let county_scenario = county(120, 11);
        let county_pair =
            SnapshotPair::align(county_scenario.source, county_scenario.target).unwrap();
        let datasets: Vec<(&str, SnapshotPair, Query)> = vec![
            (
                "policy_small",
                policy_pair(9, 5, 4, 0),
                Query::new("bonus")
                    .with_condition_attrs(["edu"])
                    .with_transform_attrs(["bonus"]),
            ),
            (
                "policy_multiblock",
                policy_pair(300, 12, 3, 7),
                Query::new("bonus")
                    .with_condition_attrs(["edu", "exp"])
                    .with_transform_attrs(["bonus"])
                    .with_alpha(0.3),
            ),
            (
                "county",
                county_pair,
                Query::new(&county_scenario.target_attr)
                    .with_condition_attrs(["department", "grade"])
                    .with_transform_attrs(["base_salary"]),
            ),
        ];
        for (name, raw_pair, query) in datasets {
            let source_csv = csv_of(raw_pair.source());
            let target_csv = csv_of(raw_pair.target());
            let pair = canonical_pair(&source_csv, &target_csv);
            let oracle = Session::open(pair.clone()).expect("oracle opens");
            let base = oracle.run(&query).expect("oracle answers");
            for workers in [1usize, 2, 3] {
                let (mut servers, addrs) = start_workers(workers, name, &source_csv, &target_csv);
                let executor =
                    Arc::new(RemoteExecutor::connect(name, &addrs, pair.len(), workers).unwrap());
                let session = Session::open_distributed(pair.clone(), executor.clone()).unwrap();
                assert_eq!(session.shard_count(), workers);
                assert_eq!(
                    session.targets().unwrap(),
                    oracle.targets().unwrap(),
                    "{name}: targets() diverged at {workers} workers"
                );
                let result = session.run(&query).expect("distributed run");
                assert_eq!(
                    fingerprint(&result),
                    fingerprint(&base),
                    "{name}: rankings diverged at {workers} workers"
                );
                // The α-slider must be backend-invariant too.
                let alphas = [0.0, 0.5, 1.0];
                let swept_oracle = oracle.sweep_alpha(&base, &alphas).unwrap();
                let swept_remote = session.sweep_alpha(&result, &alphas).unwrap();
                for (a, b) in swept_remote.iter().zip(swept_oracle.iter()) {
                    assert_eq!(
                        fingerprint(a),
                        fingerprint(b),
                        "{name}: sweep diverged at {workers} workers, α={}",
                        b.alpha
                    );
                }
                assert_eq!(
                    executor.redispatches(),
                    0,
                    "{name}: healthy workers must not re-dispatch"
                );
                for server in &mut servers {
                    server.shutdown();
                }
            }
        }
    }

    #[test]
    fn transient_worker_failure_heals_instead_of_draining_the_pool() {
        // A worker that fails once (here: asked before its dataset was
        // loaded) is sidelined, not executed: once it can serve again,
        // the last-resort re-dispatch path resurrects it.
        let raw_pair = policy_pair(150, 6, 2, 1);
        let source_csv = csv_of(raw_pair.source());
        let target_csv = csv_of(raw_pair.target());
        let pair = canonical_pair(&source_csv, &target_csv);
        let query = Query::new("bonus")
            .with_condition_attrs(["edu"])
            .with_transform_attrs(["bonus"]);

        let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
        let mut server = Server::start(manager, ServerConfig::default().with_workers(2)).unwrap();
        let addr = server.local_addr().to_string();
        let executor = Arc::new(
            RemoteExecutor::connect("late", std::slice::from_ref(&addr), pair.len(), 1).unwrap(),
        );
        let session = Session::open_distributed(pair.clone(), executor.clone()).unwrap();

        // Nothing is loaded on the worker yet: the query fails loudly
        // (typed, never a fabricated answer) and the worker is sidelined.
        assert!(session.run(&query).is_err());
        assert_eq!(executor.live_workers(), 0);

        // The dataset arrives; the same executor must heal and answer
        // with the oracle's bits.
        upload_csv(&addr, "late", &source_csv, &target_csv, Some("name")).unwrap();
        let healed = session.run(&query).expect("healed pool serves");
        assert_eq!(executor.live_workers(), 1, "worker must be resurrected");
        let oracle = Session::open(pair).unwrap();
        assert_eq!(
            fingerprint(&healed),
            fingerprint(&oracle.run(&query).unwrap())
        );
        server.shutdown();
    }

    #[test]
    fn worker_death_mid_session_redispatches_to_the_same_bits() {
        let raw_pair = policy_pair(300, 9, 5, 2);
        let source_csv = csv_of(raw_pair.source());
        let target_csv = csv_of(raw_pair.target());
        let pair = canonical_pair(&source_csv, &target_csv);
        let oracle = Session::open(pair.clone()).unwrap();
        let query_a = Query::new("bonus")
            .with_condition_attrs(["edu"])
            .with_transform_attrs(["bonus"]);
        let query_b = Query::new("bonus")
            .with_condition_attrs(["edu", "exp"])
            .with_transform_attrs(["bonus", "exp"]);

        let (mut servers, addrs) = start_workers(3, "policy", &source_csv, &target_csv);
        let executor = Arc::new(RemoteExecutor::connect("policy", &addrs, pair.len(), 3).unwrap());
        let session = Session::open_distributed(pair.clone(), executor.clone()).unwrap();

        // Healthy run first: all three workers serve their ranges.
        let a = session.run(&query_a).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&oracle.run(&query_a).unwrap()));
        assert_eq!(executor.redispatches(), 0);
        assert_eq!(executor.live_workers(), 3);

        // Kill one worker, then ask a question needing *new* statistics
        // (a wider transformation subset misses every fit memo): the dead
        // worker's block range must re-dispatch to a survivor and the
        // answer must still be the oracle's bits.
        servers[1].shutdown();
        let b = session.run(&query_b).expect("re-dispatched run succeeds");
        assert_eq!(
            fingerprint(&b),
            fingerprint(&oracle.run(&query_b).unwrap()),
            "post-failure rankings must still match the oracle bit-for-bit"
        );
        assert!(
            executor.redispatches() > 0,
            "the dead worker's range must have been re-dispatched"
        );
        assert_eq!(executor.live_workers(), 2);

        // A fresh coordinator dialing the degraded pool (dead worker
        // still listed) also converges on the oracle's bits.
        let fresh = Arc::new(RemoteExecutor::connect("policy", &addrs, pair.len(), 3).unwrap());
        let cold = Session::open_distributed(pair.clone(), fresh.clone()).unwrap();
        let c = cold.run(&query_a).expect("cold run over degraded pool");
        assert_eq!(fingerprint(&c), fingerprint(&a));
        assert!(fresh.redispatches() > 0);

        // Killing *every* worker is a hard error, never a wrong answer.
        for server in &mut servers {
            server.shutdown();
        }
        let dead = Arc::new(RemoteExecutor::connect("policy", &addrs, pair.len(), 3).unwrap());
        let doomed = Session::open_distributed(pair, dead).unwrap();
        let err = doomed.run(&query_a).unwrap_err();
        assert!(
            matches!(err, charles_core::CharlesError::Distributed(_)),
            "all-dead pool must fail loudly, got {err:?}"
        );
    }
}
