//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples with an adaptively chosen iteration
//! count, and reports mean ± spread plus throughput. No plots, no state
//! files — just wall-clock numbers on stdout, which is what the repro
//! harness consumes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case (function name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (used when the group name is enough context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and records timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let report = run_benchmark(self.sample_size, &mut f);
        print_report(&full, &report, self.throughput);
        self.criterion.reports.push((full, report));
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API parity; groups need no teardown here).
    pub fn finish(&mut self) {}
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Report {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Report {
    // Warm-up and iteration-count calibration: aim for ~25 ms per sample,
    // clamped to [1, 1e6] iterations.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    let total: Duration = times.iter().sum();
    Report {
        mean: total / times.len() as u32,
        min: times.iter().min().copied().unwrap_or_default(),
        max: times.iter().max().copied().unwrap_or_default(),
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let tp = match throughput {
        Some(Throughput::Elements(n)) if report.mean.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / report.mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if report.mean.as_secs_f64() > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / report.mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<56} {:>12.3?}  [{:.3?} .. {:.3?}]{tp}",
        report.mean, report.min, report.max
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    reports: Vec<(String, Report)>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_benchmark(10, &mut f);
        print_report(&id.name, &report, None);
        self.reports.push((id.name, report));
        self
    }

    /// All reports collected so far (name, timing).
    pub fn reports(&self) -> &[(String, Report)] {
        &self.reports
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scale", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(c.reports().len(), 2);
        assert!(c.reports()[0].0.contains("smoke/sum"));
    }
}
