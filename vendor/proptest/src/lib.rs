//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest API its test suites use: the [`proptest!`]
//! macro, strategy combinators (`prop_map`, `prop_flat_map`, `boxed`),
//! range/tuple/vec/`Just`/`prop_oneof!` strategies, a minimal `[class]{m,n}`
//! string-pattern strategy, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), and failing inputs are *not*
//! shrunk — the failing case is reported as-is. That trades minimal
//! counterexamples for zero dependencies, which is the right trade here.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::prelude` — the glob import test files use.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a proptest body; failure reports the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Discard the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Mirrors the upstream macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10i64, v in proptest::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // Rejections (prop_assume!) retry with fresh inputs, bounded so a
            // pathological assumption cannot loop forever.
            while accepted < config.cases && attempts < config.cases.saturating_mul(20).max(100) {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} case(s): {}",
                            stringify!($name), accepted + 1, msg
                        );
                    }
                }
            }
            assert!(
                accepted >= config.cases.min(1),
                "proptest {}: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
