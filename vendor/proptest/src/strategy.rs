//! Strategies: deterministic value generators for property tests.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Unlike upstream proptest there is no value
/// tree and no shrinking: `generate` draws one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `predicate` (regenerates on mismatch).
    fn prop_filter<P>(self, reason: &'static str, predicate: P) -> Filter<Self, P>
    where
        Self: Sized,
        P: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    reason: &'static str,
    predicate: P,
}

impl<S, P> Strategy for Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
#[allow(non_camel_case_types)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        self.arms
            .last()
            .expect("prop_oneof! requires at least one arm")
            .1
            .generate(rng)
    }
}

// --- primitive strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.gen()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.rng.gen::<u64>() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.rng.gen()
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.rng.gen::<u64>() as i32
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.rng.gen::<u64>() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.rng.gen::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    /// Finite floats across a wide dynamic range (no NaN/∞ — upstream's
    /// `any::<f64>()` defaults to non-NaN as well for most uses here).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa: f64 = rng.rng.gen_range(-1.0..1.0);
        let exponent: i32 = rng.rng.gen_range(-60..60);
        mantissa * 2.0f64.powi(exponent)
    }
}

/// Strategy form of [`Arbitrary`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// --- composite strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A `Vec` of strategies generates element-wise (used for per-column
/// strategies of a generated table shape).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi <= self.size.lo {
            self.size.lo
        } else {
            rng.rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// --- string pattern strategy ---------------------------------------------

/// `&'static str` acts as a regex-flavoured string strategy. Supported
/// shape: a single character class with a bounded repetition,
/// `[chars]{lo,hi}` (ranges like `a-z` work; a trailing `-` is literal).
/// Any other pattern generates the literal string itself.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = if hi <= lo {
                    lo
                } else {
                    rng.rng.gen_range(lo..=hi)
                };
                (0..len)
                    .map(|_| chars[rng.rng.gen_range(0..chars.len())])
                    .collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // A `-` between two chars is a range; elsewhere it is literal.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a <= b {
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
                continue;
            }
        }
        if class[i] != '\\' {
            alphabet.push(class[i]);
        }
        i += 1;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-c9 ]{0,12}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((lo, hi), (0, 12));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_alphabet_and_length() {
        let mut rng = TestRng::deterministic("string_strategy");
        let strat = "[ab]{2,4}";
        for _ in 0..100 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s:?}");
        }
    }

    #[test]
    fn union_weights_bias_sampling() {
        let mut rng = TestRng::deterministic("union_weights");
        let u = crate::prop_oneof![3 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| u.generate(&mut rng)).count();
        assert!((600..900).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn composite_generation_is_deterministic() {
        let build = || {
            let mut rng = TestRng::deterministic("composite");
            let strat = crate::collection::vec((0i64..100).prop_map(|v| v * 2), 1..8);
            (0..20)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
