//! Test-runner support types for the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only the knob the workspace uses is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it is retried.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Deterministic per test name so failures
/// reproduce across runs without recording seeds.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
