//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand` 0.8 API the ChARLES crates actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded via SplitMix64 — high-quality, fast, and fully
//! deterministic for a given seed (which is all the synthetic-data and
//! clustering code requires; it never needs cryptographic randomness).
//!
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, so seeded
//! data sets are reproducible *within* this workspace but not bit-identical
//! to ones generated with the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly "at large" (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply
/// (modulo bias is negligible at these bounds; determinism is what
/// matters here).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing RNG interface.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(35..=92);
            assert!((35..=92).contains(&v));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.45)).count();
        assert!((3_500..5_500).contains(&hits), "hits = {hits}");
        assert!(!StdRng::seed_from_u64(2).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(2).gen_bool(1.0));
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
